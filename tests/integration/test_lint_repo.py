"""The real tree passes its own invariant checker with the committed baseline.

This is the same gate CI runs: ``repro-ftes lint --strict-baseline`` must
exit 0 — no new violations, and no stale baseline entries (debt paid down
without regenerating ``lint-baseline.json``).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def run_lint_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(SRC), "PATH": ""},
    )


def test_repo_is_clean_under_strict_baseline():
    result = run_lint_cli("--strict-baseline")
    assert result.returncode == 0, result.stdout + result.stderr


def test_json_report_has_no_new_violations():
    result = run_lint_cli("--format", "json")
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["new_count"] == 0
    assert payload["rules"] == [
        "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
    ]
    # The whole package is being checked, not a subtree.
    assert payload["checked_modules"] >= 80


def test_committed_baseline_parses_and_matches_current_findings():
    from repro.lint import load_baseline

    entries = load_baseline(REPO / "lint-baseline.json")
    result = run_lint_cli("--format", "json")
    payload = json.loads(result.stdout)
    assert len(entries) == payload["baselined_count"]
    assert payload["stale_entries"] == []


def test_rule_listing_names_all_invariants():
    result = run_lint_cli("--list-rules")
    assert result.returncode == 0
    for rule_id in (
        "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
    ):
        assert rule_id in result.stdout


def test_parallel_parsing_matches_serial():
    serial = run_lint_cli("--format", "json")
    parallel = run_lint_cli("--format", "json", "--jobs", "2")
    assert parallel.returncode == serial.returncode
    assert json.loads(parallel.stdout) == json.loads(serial.stdout)


def test_seeded_known_bad_tree_fails(tmp_path):
    package = tmp_path / "repro"
    package.mkdir()
    (package / "__init__.py").write_text("")
    (package / "generator").mkdir()
    (package / "generator" / "__init__.py").write_text("")
    (package / "generator" / "bad.py").write_text(
        "import random\n\n\ndef jitter():\n    return random.random()\n"
    )
    result = run_lint_cli("--root", str(package), "--no-baseline")
    assert result.returncode == 1
    assert "R004" in result.stdout
