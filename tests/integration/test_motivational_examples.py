"""Integration tests: the paper's motivational examples end to end.

These tests assert the exact numbers printed in the paper for Fig. 2/3
(hardware vs. software recovery) and Fig. 4 (architecture alternatives),
exercising the SFP analysis, the re-execution optimizer and the scheduler
together.
"""

from __future__ import annotations

import pytest

from repro.experiments.motivational import (
    evaluate_fig3_alternatives,
    evaluate_fig4_alternatives,
)


class TestFig3:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return {outcome.label: outcome for outcome in evaluate_fig3_alternatives()}

    def test_reexecution_counts_match_paper(self, outcomes):
        assert outcomes["N1^1"].reexecutions == {"N1": 6}
        assert outcomes["N1^2"].reexecutions == {"N1": 2}
        assert outcomes["N1^3"].reexecutions == {"N1": 1}

    def test_worst_case_delays_match_paper(self, outcomes):
        # Fig. 3a: 7 executions of 80 ms plus 6 recoveries of 20 ms = 680 ms.
        assert outcomes["N1^1"].schedule_length == pytest.approx(680.0)
        # Fig. 3b and 3c complete at exactly the same time (340 ms).
        assert outcomes["N1^2"].schedule_length == pytest.approx(340.0)
        assert outcomes["N1^3"].schedule_length == pytest.approx(340.0)

    def test_schedulability_matches_paper(self, outcomes):
        assert not outcomes["N1^1"].schedulable
        assert outcomes["N1^2"].schedulable
        assert outcomes["N1^3"].schedulable

    def test_cost_doubles_with_hardening(self, outcomes):
        assert outcomes["N1^2"].cost == 20.0
        assert outcomes["N1^3"].cost == 40.0

    def test_all_alternatives_meet_reliability(self, outcomes):
        assert all(outcome.meets_reliability for outcome in outcomes.values())


class TestFig4:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return evaluate_fig4_alternatives()

    def test_costs_match_paper(self, outcomes):
        assert outcomes["a"].cost == 72.0
        assert outcomes["b"].cost == 32.0
        assert outcomes["c"].cost == 40.0
        assert outcomes["d"].cost == 64.0
        assert outcomes["e"].cost == 80.0

    def test_schedulability_matches_paper(self, outcomes):
        assert outcomes["a"].schedulable
        assert not outcomes["b"].schedulable
        assert not outcomes["c"].schedulable
        assert not outcomes["d"].schedulable
        assert outcomes["e"].schedulable

    def test_reexecution_counts_match_paper(self, outcomes):
        assert outcomes["a"].reexecutions == {"N1": 1, "N2": 1}
        assert outcomes["b"].reexecutions == {"N1": 2}
        assert outcomes["c"].reexecutions == {"N2": 2}
        # The most hardened monoprocessor versions need no re-executions.
        assert outcomes["d"].reexecutions == {"N1": 0}
        assert outcomes["e"].reexecutions == {"N2": 0}

    def test_distributed_solution_cheaper_than_monoprocessor(self, outcomes):
        # The paper's core argument: Fig. 4a (72) beats Fig. 4e (80).
        assert outcomes["a"].cost < outcomes["e"].cost

    def test_worst_case_lengths(self, outcomes):
        assert outcomes["b"].schedule_length == pytest.approx(540.0)
        assert outcomes["c"].schedule_length == pytest.approx(450.0)
        assert outcomes["d"].schedule_length == pytest.approx(390.0)
        assert outcomes["e"].schedule_length == pytest.approx(330.0)
        assert outcomes["a"].schedule_length <= 360.0
