"""Determinism of parallel sweeps: ``n_jobs=N`` ≡ serial, bit for bit.

The experiment harness promises that worker processes are an implementation
detail: same seed, same preset → identical :class:`DesignResult`s, identical
acceptance percentages and identical rendered (golden) output, regardless of
``n_jobs``.  Worker processes inherit no engine state (caches are per
process) and resolve their kernel backend independently, so this also guards
the kernel registry's behaviour under ``ProcessPoolExecutor`` pickling.
"""

from __future__ import annotations

import pytest

from repro.core.fault_model import SER_MEDIUM
from repro.experiments.synthetic import (
    AcceptanceExperiment,
    ExperimentPreset,
    render_hpd_sweep,
)

HPD_VALUES = (5.0, 100.0)


def _run(n_jobs, store_dir=None):
    experiment = AcceptanceExperiment(
        preset=ExperimentPreset.smoke(), n_jobs=n_jobs, store_dir=store_dir
    )
    sweep = experiment.hpd_sweep(
        ser=SER_MEDIUM, hpd_values=HPD_VALUES, max_cost=20.0
    )
    settings = [experiment.run_setting(SER_MEDIUM, hpd) for hpd in HPD_VALUES]
    return sweep, settings


@pytest.fixture(scope="module")
def serial():
    return _run(n_jobs=1)


@pytest.fixture(scope="module")
def parallel():
    return _run(n_jobs=2)


def test_acceptance_percentages_identical(serial, parallel):
    assert serial[0] == parallel[0]


def test_design_results_identical(serial, parallel):
    """Every semantic field of every DesignResult matches (cache counters are
    excluded from DesignResult equality by construction)."""
    for setting_serial, setting_parallel in zip(serial[1], parallel[1]):
        assert setting_serial.results == setting_parallel.results


def test_rendered_golden_output_identical(serial, parallel):
    title = "determinism check"
    assert render_hpd_sweep(serial[0], title) == render_hpd_sweep(
        parallel[0], title
    )


def test_batch_kernels_parallel_sweep_identical(serial, monkeypatch):
    """The batched kernel pair under ``n_jobs=2`` reproduces the default
    serial results bit for bit — batching and worker processes are both
    implementation details.  Selection goes through the environment so
    spawned workers resolve the same backends as the parent."""
    monkeypatch.setenv("REPRO_SFP_KERNEL", "batch")
    monkeypatch.setenv("REPRO_SCHED_KERNEL", "batch")
    batched = _run(n_jobs=2)
    assert batched[0] == serial[0]
    for setting_batched, setting_serial in zip(batched[1], serial[1]):
        assert setting_batched.results == setting_serial.results
    # The batched run actually batched: rows flowed through the partitioned
    # lookups and a nonzero residual reached the batch kernels.
    summary_totals = [setting.cache_summary() for setting in batched[1]]
    assert sum(summary["batch_rows"] for summary in summary_totals) > 0
    assert sum(summary["batch_cold_rows"] for summary in summary_totals) > 0
    # Search effort and computed points are caching/batching-invariant.
    for setting_batched, setting_serial in zip(batched[1], serial[1]):
        batched_summary = setting_batched.cache_summary()
        serial_summary = setting_serial.cache_summary()
        assert (
            batched_summary["search_evaluations"]
            == serial_summary["search_evaluations"]
        )
        assert (
            batched_summary["points_computed"]
            == serial_summary["points_computed"]
        )
        # The partitioned lookups issue the same key sequence the scalar
        # path issues, so even the hit/miss totals line up exactly.
        assert batched_summary["hits"] == serial_summary["hits"]
        assert batched_summary["misses"] == serial_summary["misses"]


def test_parallel_run_with_store_stays_identical(tmp_path, serial):
    """The persistent store must not perturb parallel results either; a
    second warm parallel run must hit the disk cache and still agree."""
    cold = _run(n_jobs=2, store_dir=tmp_path)
    assert cold[0] == serial[0]
    warm = _run(n_jobs=2, store_dir=tmp_path)
    assert warm[0] == serial[0]
    warm_disk_hits = sum(setting.disk_hits for setting in warm[1])
    warm_loaded = sum(setting.disk_entries_loaded for setting in warm[1])
    assert warm_loaded > 0
    assert warm_disk_hits > 0
