"""The runtime determinism sanitizer on real runs.

Three contracts:

* a clean fast-preset run under the sanitizer is *silent* (no violations)
  and produces the same report as an unsanitized run — the sanitizer
  observes, it never changes behaviour;
* the CLI surface (``run --sanitize``) prints the empty sanitizer summary
  to stderr and keeps exit code 0 on a clean run;
* a seeded defect (an unpicklable pool task) is caught by *both* layers —
  the static R006 rule and the runtime sanitizer — with matching rule ids.
"""

from __future__ import annotations

import pickle
import sys
import textwrap
import types
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api import RunConfig, run as api_run
from repro.cli import main as cli_main
from repro.lint import RULES
from repro.lint.project import Project
from repro.lint.sanitizer import SANITIZE_ENV, DeterminismSanitizer


def test_fast_preset_run_is_sanitizer_silent():
    config = RunConfig(preset="fast")
    with DeterminismSanitizer() as sanitizer:
        sanitized = api_run("synthetic-random", config)
    assert sanitizer.violations == [], [
        violation.format_text() for violation in sanitizer.violations
    ]
    plain = api_run("synthetic-random", config)
    assert sanitized.results == plain.results
    assert sanitized.params == plain.params
    assert sanitized.kernels == plain.kernels


def test_cli_sanitize_flag_clean_run(capsys, monkeypatch):
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    exit_code = cli_main(["run", "synthetic-random", "--preset", "fast", "--sanitize"])
    captured = capsys.readouterr()
    assert exit_code == 0, captured.err
    assert "sanitizer: 0 violation(s)" in captured.err
    # The flag exports the env opt-in so pool workers inherit it.
    import os

    assert os.environ.get(SANITIZE_ENV) == "1"


def test_injected_unpicklable_task_caught_by_both_layers():
    # --- static layer: the same defect as fixture source --------------
    project = Project.from_sources(
        {
            "repro.experiments.injected": textwrap.dedent(
                """
                from concurrent.futures import ProcessPoolExecutor

                def sweep(values):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(lambda v: v + 1, values))
                """
            )
        }
    )
    static_rules = {v.rule for v in RULES.get("R006").check(project)}
    assert static_rules == {"R006"}

    # --- dynamic layer: the same defect actually executed -------------
    fixture = types.ModuleType("repro.experiments.injected_runtime")
    sys.modules["repro.experiments.injected_runtime"] = fixture
    exec(
        compile(
            "def sweep(pool, values):\n"
            "    return pool.submit(len, [lambda v: v + 1 for v in values])\n",
            "<repro-injected-task>",
            "exec",
        ),
        fixture.__dict__,
    )
    try:
        with DeterminismSanitizer() as sanitizer:
            with ProcessPoolExecutor(max_workers=1) as pool:
                future = fixture.sweep(pool, [1, 2])
                with pytest.raises((pickle.PicklingError, AttributeError)):
                    future.result()
        dynamic_rules = {v.rule for v in sanitizer.violations}
        assert dynamic_rules == {"R006"}
        # Both layers name the same invariant.
        assert dynamic_rules == static_rules
    finally:
        del sys.modules["repro.experiments.injected_runtime"]
