"""End-to-end HTTP tests of repro.serve: jobs, streams, shared warm store.

A real :class:`ServeApp` runs on an ephemeral port in a background thread
with its own event loop; tests talk to it through ``http.client`` exactly
like an external consumer.  The expensive contracts live here:

* the report returned over HTTP for the fast-preset ``fig6a`` job is
  byte-identical to the committed golden fixture;
* two concurrent jobs with the *same* context fingerprint share the warm
  store single-flight — the second job computes zero design points;
* N concurrent jobs with *distinct* contexts return payloads byte-identical
  to sequential in-process runs of the same configs;
* backpressure (429 + Retry-After) and the per-job timeout.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

from repro import api
from repro.serve import ServeApp, ServeConfig

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

#: Fixed size/seed of the synthetic-random jobs used below: big enough for
#: a non-trivial DSE trajectory, small enough to keep the suite fast.
RANDOM_PARAMS = {"n_processes": 30, "seed": 11}


@contextlib.contextmanager
def serve_app(tmp_path, **overrides):
    """A live server on an ephemeral port; yields ``(host, port, app)``."""
    overrides.setdefault("spool_dir", tmp_path / "serve")
    config = ServeConfig(host="127.0.0.1", port=0, **overrides)
    app = ServeApp(config)
    ready = threading.Event()
    bound = {}
    loop = asyncio.new_event_loop()
    state = {}

    def on_ready(host: str, port: int) -> None:
        bound["host"], bound["port"] = host, port
        ready.set()

    def runner() -> None:
        asyncio.set_event_loop(loop)
        state["task"] = loop.create_task(app.run(ready=on_ready))
        try:
            loop.run_until_complete(state["task"])
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(timeout=30.0), "server did not come up"
    try:
        yield bound["host"], bound["port"], app
    finally:
        loop.call_soon_threadsafe(state["task"].cancel)
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "server thread did not shut down"


def _request(host, port, method, path, body=None, timeout=60.0):
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            method, path, body=json.dumps(body) if body is not None else None
        )
        response = connection.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


def _submit(host, port, scenario, config=None):
    status, headers, payload = _request(
        host, port, "POST", "/jobs", {"scenario": scenario, "config": config or {}}
    )
    assert status == 202, payload
    record = json.loads(payload)
    assert headers["Location"] == f"/jobs/{record['id']}"
    return record["id"]


def _stream_events(host, port, job_id, timeout=300.0):
    """Read the job's NDJSON stream to its terminal event."""
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", f"/jobs/{job_id}/events")
        response = connection.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        raw = response.read()  # server closes after the terminal event
    finally:
        connection.close()
    return [json.loads(line) for line in raw.decode("utf-8").splitlines()]


def _wait_done(host, port, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, payload = _request(host, port, "GET", f"/jobs/{job_id}")
        assert status == 200
        record = json.loads(payload)
        if record["state"] in ("done", "failed"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


# ----------------------------------------------------------------------
# the full happy path, byte-identical to the golden fixture
# ----------------------------------------------------------------------
def test_fig6a_job_over_http_matches_the_golden_report(tmp_path):
    golden = json.loads((GOLDEN_DIR / "fig6a_fast.json").read_text())
    with serve_app(tmp_path, workers=1) as (host, port, _app):
        status, _, payload = _request(host, port, "GET", "/scenarios")
        assert status == 200
        scenarios = {spec["id"]: spec for spec in json.loads(payload)["scenarios"]}
        assert "fig6a" in scenarios
        assert any(
            param["name"] == "n_processes"
            for param in scenarios["synthetic-random"]["params"]
        )

        job_id = _submit(host, port, "fig6a", {"preset": "fast"})
        events = _stream_events(host, port, job_id)
        names = [event["event"] for event in events]
        assert names[0] == "job_queued"
        assert names[1] == "job_started"
        assert names[2] == "scenario_started"
        assert names[-2] == "scenario_finished"
        assert names[-1] == "job_done"
        progress = [event for event in events if event["event"] == "setting_progress"]
        assert progress, "no per-round progress events streamed"
        # Each snapshot carries the engine/batch cache counters of the round.
        for event in progress:
            assert {"hits", "misses", "points_computed", "completed", "total"} <= set(event)
        assert progress[-1]["completed"] == progress[-1]["total"]

        record = _wait_done(host, port, job_id)
        assert record["state"] == "done"
        # Byte-identity against the committed golden (the fixture *is* the
        # results payload): same contract as scripts/diff_report_golden.py.
        assert json.dumps(record["report"]["results"], sort_keys=True) == json.dumps(
            golden, sort_keys=True
        )

        status, _, payload = _request(host, port, "GET", "/healthz")
        health = json.loads(payload)
        assert health["status"] == "ok"
        assert health["jobs"]["done"] == 1
        assert health["store"]["files"] >= 1  # the job persisted its contexts


# ----------------------------------------------------------------------
# shared warm store: single-flight across concurrent identical jobs
# ----------------------------------------------------------------------
def test_concurrent_identical_jobs_compute_each_point_once(tmp_path):
    with serve_app(tmp_path, workers=2) as (host, port, _app):
        config = {"scenario_params": dict(RANDOM_PARAMS)}
        first = _submit(host, port, "synthetic-random", config)
        second = _submit(host, port, "synthetic-random", config)
        records = [_wait_done(host, port, job_id) for job_id in (first, second)]
        assert [record["state"] for record in records] == ["done", "done"]
        payloads = [
            json.dumps(record["report"]["results"], sort_keys=True)
            for record in records
        ]
        assert payloads[0] == payloads[1]
        computed = sorted(
            record["report"]["cache"]["points_computed"] for record in records
        )
        # Single-flight: the follower warm-loads the leader's persisted
        # entries and computes *nothing*; only one job paid the cold cost.
        assert computed[0] == 0
        assert computed[1] > 0
        follower = next(
            record
            for record in records
            if record["report"]["cache"]["points_computed"] == 0
        )
        assert follower["report"]["cache"]["disk_entries_loaded"] > 0


def test_parallel_distinct_jobs_match_sequential_runs_byte_for_byte(tmp_path):
    seeds = (3, 5, 9)
    with serve_app(tmp_path, workers=3) as (host, port, _app):
        job_ids = [
            _submit(
                host,
                port,
                "synthetic-random",
                {"scenario_params": {"n_processes": 25, "seed": seed}},
            )
            for seed in seeds
        ]
        records = [_wait_done(host, port, job_id) for job_id in job_ids]
    assert all(record["state"] == "done" for record in records)
    for seed, record in zip(seeds, records):
        sequential = api.run(
            "synthetic-random",
            api.RunConfig(scenario_params={"n_processes": 25, "seed": seed}),
        )
        assert json.dumps(record["report"]["results"], sort_keys=True) == json.dumps(
            sequential.results, sort_keys=True
        )


# ----------------------------------------------------------------------
# backpressure and timeouts
# ----------------------------------------------------------------------
def test_full_queue_returns_429_with_retry_after(tmp_path):
    with serve_app(
        tmp_path, workers=1, queue_size=1, job_timeout_seconds=120.0
    ) as (host, port, _app):
        config = {"preset": "fast"}
        # Saturate: one job running (dequeued), then fill the single queue
        # slot, then overflow.  The first submission may still sit in the
        # queue for a beat, so allow one extra attempt before asserting.
        _submit(host, port, "fig6a", config)
        statuses = []
        for _ in range(3):
            status, headers, payload = _request(
                host, port, "POST", "/jobs", {"scenario": "fig6a", "config": config}
            )
            statuses.append(status)
            if status == 429:
                assert headers["Retry-After"] == "120"
                record = json.loads(payload)
                assert record["status"] == 429
                break
        assert 429 in statuses


def test_job_timeout_records_a_failed_job(tmp_path):
    with serve_app(tmp_path, workers=1, job_timeout_seconds=0.2) as (
        host,
        port,
        _app,
    ):
        job_id = _submit(host, port, "fig6a", {"preset": "fast"})
        record = _wait_done(host, port, job_id)
        assert record["state"] == "failed"
        assert "timed out" in record["error"]
        events = _stream_events(host, port, job_id)
        assert events[-1]["event"] == "job_failed"


# ----------------------------------------------------------------------
# sanitized worker path
# ----------------------------------------------------------------------
def test_sanitized_serve_worker_stays_silent_and_correct(tmp_path):
    golden = json.loads((GOLDEN_DIR / "fig6a_fast.json").read_text())
    with serve_app(tmp_path, workers=1, sanitize=True) as (host, port, _app):
        job_id = _submit(host, port, "fig6a", {"preset": "fast"})
        record = _wait_done(host, port, job_id)
        # A sanitizer violation would fail the job (the worker raises); a
        # clean run must stay done AND byte-identical.
        assert record["state"] == "done", record["error"]
        assert json.dumps(record["report"]["results"], sort_keys=True) == json.dumps(
            golden, sort_keys=True
        )


def test_unknown_routes_and_methods(tmp_path):
    with serve_app(tmp_path, workers=1) as (host, port, _app):
        assert _request(host, port, "GET", "/nope")[0] == 404
        assert _request(host, port, "POST", "/scenarios", {})[0] == 405
        assert _request(host, port, "GET", "/jobs/job-404404")[0] == 404
        assert _request(host, port, "GET", "/jobs/job-404404/events")[0] == 404
