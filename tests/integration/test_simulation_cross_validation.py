"""Cross-validation: Monte-Carlo simulation vs. analytic SFP, per kernel.

Ties the three layers the kernel refactor spans — the analysis kernels, the
design flow that consumes them, and the fault-scenario simulator — together
on one small synthetic benchmark: a design produced *through* a given kernel
backend must be validated by the simulator against the *analytic* bound that
same backend computed.  Because backends are bit-identical, the designs, the
bounds and the simulated replay must all agree across backends too.
"""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, Node
from repro.core.baselines import optimized_strategy
from repro.core.mapping import MappingAlgorithm
from repro.core.sfp import SFPAnalysis
from repro.engine import EvaluationEngine
from repro.generator.benchmark import build_platform, generate_benchmark_suite
from repro.kernels import get_kernel, kernel_names
from repro.simulation.fault_simulator import FaultScenarioSimulator

#: High enough error rate that a 20k-iteration campaign observes faults.
SER = 3e-9
HPD = 25.0

KERNELS = kernel_names(available_only=True)


@pytest.fixture(scope="module")
def small_benchmark():
    return generate_benchmark_suite(count=1, base_seed=11, process_counts=(8,))[0]


def _design_with_kernel(small_benchmark, kernel_name):
    """Run the OPT strategy end to end on one backend; return the design."""
    node_types, profile = build_platform(
        small_benchmark, ser_per_cycle=SER, hardening_performance_degradation=HPD
    )
    kernel = get_kernel(kernel_name)
    engine = EvaluationEngine(small_benchmark.application, profile, kernel=kernel)
    algorithm = MappingAlgorithm(
        max_iterations=2, stop_after_no_improvement=1, max_candidates=2
    )
    result = optimized_strategy(node_types, algorithm).explore(
        small_benchmark.application, profile, engine=engine
    )
    return result, node_types, profile


@pytest.mark.parametrize("kernel_name", KERNELS)
def test_simulator_respects_analytic_bound(small_benchmark, kernel_name):
    result, node_types, profile = _design_with_kernel(small_benchmark, kernel_name)
    assert result.feasible, "benchmark/setting must admit a design"

    types_by_name = {node_type.name: node_type for node_type in node_types}
    architecture = Architecture(
        [
            Node(name, types_by_name[type_name], hardening=result.hardening[name])
            for name, type_name in result.node_types.items()
        ]
    )
    simulator = FaultScenarioSimulator(iterations=20_000, seed=4242)
    summary = simulator.simulate(
        small_benchmark.application,
        architecture,
        result.mapping,
        profile,
        result.schedule,
        reexecutions=result.reexecutions,
    )
    # Reliability: observed unrecovered rate within statistical tolerance of
    # the analytic (pessimistic) SFP bound.
    assert summary.respects_sfp_bound
    # Timing: recovered iterations never exceed the analytic worst case.
    assert summary.timing_validated

    # The analytic bound recomputed directly on this backend matches what
    # the simulator derived internally.
    analysis = SFPAnalysis(
        small_benchmark.application,
        architecture,
        result.mapping,
        profile,
        kernel=get_kernel(kernel_name),
    )
    assert (
        analysis.system_failure_per_iteration(result.reexecutions)
        == summary.predicted_failure_bound
    )


def test_designs_identical_across_kernels(small_benchmark):
    """The same exploration on every backend lands on the same design."""
    outcomes = [
        _design_with_kernel(small_benchmark, kernel_name)[0] for kernel_name in KERNELS
    ]
    first = outcomes[0]
    for other in outcomes[1:]:
        assert other == first
