"""Integration tests: the Fig. 6 synthetic experiments reproduce the paper's shape.

The absolute acceptance percentages depend on the (scaled-down) benchmark
suite, but the qualitative relationships the paper draws from Fig. 6 must
hold:

* MIN is insensitive to the hardening performance degradation (it never
  hardens anything);
* MAX degrades as HPD grows and improves as the cost cap is relaxed;
* OPT dominates both baselines everywhere;
* at the lowest error rate OPT and MIN coincide (software-only suffices),
  while at the highest error rate OPT clearly beats MIN.
"""

from __future__ import annotations

import pytest

from repro.core.fault_model import SER_HIGH, SER_LOW, SER_MEDIUM
from repro.experiments.synthetic import AcceptanceExperiment, ExperimentPreset


@pytest.fixture(scope="module")
def experiment() -> AcceptanceExperiment:
    preset = ExperimentPreset(
        n_applications=6,
        process_counts=(16, 24),
        n_node_types=3,
        mapping_iterations=3,
        mapping_stop_after=2,
        mapping_candidates=2,
    )
    return AcceptanceExperiment(preset=preset)


@pytest.fixture(scope="module")
def hpd_sweep(experiment):
    return experiment.hpd_sweep(SER_MEDIUM, (5.0, 100.0), max_cost=20.0)


@pytest.fixture(scope="module")
def ser_sweep(experiment):
    return experiment.ser_sweep(25.0, (SER_LOW, SER_HIGH), max_cost=20.0)


class TestFig6Shape:
    def test_min_is_flat_over_hpd(self, hpd_sweep):
        assert hpd_sweep[5.0]["MIN"] == pytest.approx(hpd_sweep[100.0]["MIN"])

    def test_max_degrades_with_hpd(self, hpd_sweep):
        assert hpd_sweep[100.0]["MAX"] <= hpd_sweep[5.0]["MAX"]

    def test_opt_dominates_baselines(self, hpd_sweep, ser_sweep):
        for values in list(hpd_sweep.values()) + list(ser_sweep.values()):
            assert values["OPT"] >= values["MIN"]
            assert values["OPT"] >= values["MAX"]

    def test_min_degrades_with_error_rate(self, ser_sweep):
        assert ser_sweep[SER_HIGH]["MIN"] <= ser_sweep[SER_LOW]["MIN"]

    def test_opt_matches_min_at_low_error_rate(self, ser_sweep):
        # Software fault tolerance alone suffices at SER = 1e-12.
        assert ser_sweep[SER_LOW]["OPT"] >= ser_sweep[SER_LOW]["MIN"]

    def test_opt_clearly_beats_min_at_high_error_rate(self, ser_sweep):
        assert ser_sweep[SER_HIGH]["OPT"] > ser_sweep[SER_HIGH]["MIN"]


class TestCostCapBehaviour:
    def test_max_improves_with_larger_cost_cap(self, experiment):
        setting = experiment.run_setting(SER_MEDIUM, 25.0)
        tight = setting.acceptance_percent(15.0)["MAX"]
        loose = setting.acceptance_percent(25.0)["MAX"]
        assert loose >= tight

    def test_acceptance_without_cap_is_upper_bound(self, experiment):
        setting = experiment.run_setting(SER_MEDIUM, 25.0)
        capped = setting.acceptance_percent(20.0)
        uncapped = setting.acceptance_percent(None)
        for strategy in ("MIN", "MAX", "OPT"):
            assert uncapped[strategy] >= capped[strategy]

    def test_average_cost_reporting(self, experiment):
        setting = experiment.run_setting(SER_MEDIUM, 25.0)
        assert setting.average_cost("OPT") > 0.0


class TestExperimentMachinery:
    def test_settings_are_cached(self, experiment):
        first = experiment.run_setting(SER_MEDIUM, 25.0)
        second = experiment.run_setting(SER_MEDIUM, 25.0)
        assert first is second

    def test_results_cover_all_benchmarks(self, experiment):
        setting = experiment.run_setting(SER_MEDIUM, 25.0)
        for strategy in ("MIN", "MAX", "OPT"):
            assert len(setting.results[strategy]) == len(experiment.benchmarks)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            AcceptanceExperiment(
                preset=ExperimentPreset.smoke(), strategies=("MIN", "BOGUS")
            )

    def test_presets_expose_paper_configuration(self):
        paper = ExperimentPreset.paper()
        assert paper.n_applications == 150
        assert paper.process_counts == (20, 40)
