"""Bit-identity property suite for the batched kernel contract.

The batch entry points — ``SFPKernel.batch_probability_exceeds`` and
``SchedulerKernel.batch_schedule`` — must return, for every block of rows,
exactly the values the scalar entry points return row by row.  This is what
lets the evaluation engine hand whole neighbourhoods to a vectorizing
backend without batching ever becoming a semantics knob: results, cached
entries and golden fixtures are identical whether a design point was scored
alone or inside a block.

Every registered backend is swept — backends without ``supports_batch``
exercise the scalar fallback loop inherited from the family base, the
``batch`` backends exercise the vectorized block pass (padded-row packing,
column-major DP, per-slot table replay).  Blocks include ragged rows, empty
rows, duplicate rows, degenerate one-row batches and the empty batch;
rounding accuracies cross the array backend's integer-quanta cutoff so the
batch backend's own scalar fallback path is hit too.

Equality is asserted with exact ``==`` on purpose — close is not a thing
here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.bus import SimpleBus, TDMABus
from repro.core.application import Application, Message, Process
from repro.core.architecture import Architecture, HVersion, Node, NodeType
from repro.core.exceptions import ModelError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.kernels import (
    get_kernel,
    get_sched_kernel,
    kernel_names,
    sched_kernel_names,
)
from repro.kernels.array_backend import MAX_FAST_DECIMALS
from repro.scheduling.list_scheduler import ListScheduler

SFP_REFERENCE = get_kernel("reference")

ALL_SFP = kernel_names(available_only=True)
ALL_SCHED = sched_kernel_names(available_only=True)

DECIMALS = st.sampled_from([2, 5, 11, MAX_FAST_DECIMALS, MAX_FAST_DECIMALS + 3])

PROBABILITY = st.one_of(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e-9, allow_nan=False),
    st.sampled_from([0.0, 1.0, 0.5, 0.1, 1e-11, 1.2e-5]),
)


@st.composite
def sfp_batches(draw):
    """A ragged block of probability rows with per-row budgets.

    Duplicate rows are provoked on purpose (a drawn row may be repeated) —
    within one batch they must come out identical to their first occurrence.
    """
    # Spans the batch backend's MIN_VECTOR_ROWS cutoff: small blocks take
    # the scalar fallback, larger ones the vectorized padded-block pass.
    n_rows = draw(
        st.one_of(
            st.integers(min_value=0, max_value=8),
            st.integers(min_value=16, max_value=24),
        )
    )
    blocks = []
    budgets = []
    for _ in range(n_rows):
        if blocks and draw(st.booleans()) and draw(st.booleans()):
            row = draw(st.sampled_from(blocks))
        else:
            row = draw(st.lists(PROBABILITY, min_size=0, max_size=10))
        blocks.append(row)
        budgets.append(draw(st.integers(min_value=0, max_value=6)))
    return blocks, budgets


@pytest.mark.parametrize("name", ALL_SFP)
@given(batch=sfp_batches(), decimals=DECIMALS)
@settings(max_examples=200, deadline=None)
def test_batch_probability_exceeds_rowwise_identical(name, batch, decimals):
    blocks, budgets = batch
    kernel = get_kernel(name)
    expected = [
        SFP_REFERENCE.probability_exceeds(row, budget, decimals)
        for row, budget in zip(blocks, budgets)
    ]
    produced = kernel.batch_probability_exceeds(blocks, budgets, decimals)
    assert produced == expected, (
        f"{name} batch drifted for {blocks!r}, budgets={budgets}, "
        f"decimals={decimals}"
    )


@pytest.mark.parametrize("name", ALL_SFP)
@given(
    probabilities=st.lists(PROBABILITY, min_size=0, max_size=10),
    budget=st.integers(min_value=0, max_value=6),
    decimals=DECIMALS,
)
@settings(max_examples=100, deadline=None)
def test_one_row_batch_equals_scalar_call(name, probabilities, budget, decimals):
    """The degenerate 1-row batch is the scalar call, bit for bit."""
    kernel = get_kernel(name)
    assert kernel.batch_probability_exceeds(
        [probabilities], [budget], decimals
    ) == [kernel.probability_exceeds(probabilities, budget, decimals)]


@pytest.mark.parametrize("name", ALL_SFP)
def test_empty_batch_returns_empty(name):
    assert get_kernel(name).batch_probability_exceeds([], []) == []


@pytest.mark.parametrize("name", ALL_SFP)
def test_batch_raises_the_scalar_validation_error(name):
    """Bad rows fail with the scalar path's exception (negative budget,
    out-of-range probability) — the vectorized pass must not swallow them."""
    kernel = get_kernel(name)
    with pytest.raises(ModelError):
        kernel.batch_probability_exceeds([[0.1], [0.2]], [1, -1])
    with pytest.raises(ValueError):
        kernel.batch_probability_exceeds([[0.1], [1.5]], [1, 1])
    # Wide enough for the vectorized pass: the range check must still route
    # the bad row through the scalar loop's exact per-row error.
    wide = [[0.1]] * 19 + [[1.5]]
    with pytest.raises(ValueError):
        kernel.batch_probability_exceeds(wide, [1] * 20)


# ----------------------------------------------------------------------
# scheduler family
# ----------------------------------------------------------------------
NODE_NAMES = ("NA", "NB", "NC")
DURATION = st.sampled_from([1.0, 2.0, 2.5, 3.0, 7.0, 10.0])
TRANSMISSION = st.sampled_from([0.0, 0.5, 1.0, 2.0])


@st.composite
def sched_batches(draw):
    """A base DAG problem plus 1..4 sibling rows.

    The rows vary exactly what the DSE neighbourhoods vary: per-node
    hardening levels (fresh architecture copies), one-process mapping moves
    and re-execution budgets — all against one application and profile.
    """
    n_processes = draw(st.integers(min_value=1, max_value=6))
    n_nodes = draw(st.integers(min_value=2, max_value=3))
    node_names = NODE_NAMES[:n_nodes]

    application = Application(
        "batch-prop", deadline=100_000.0, reliability_goal=0.9,
        recovery_overhead=draw(st.sampled_from([0.0, 1.0, 5.0])),
    )
    graph = application.new_graph("G")
    for index in range(n_processes):
        graph.add_process(Process(f"P{index}", nominal_wcet=10.0))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_processes - 1),
                st.integers(min_value=0, max_value=n_processes - 1),
            ).filter(lambda pair: pair[0] < pair[1]),
            unique=True,
            max_size=2 * n_processes,
        )
    )
    max_transmission = 0.0
    for source, destination in edges:
        transmission = draw(TRANSMISSION)
        max_transmission = max(max_transmission, transmission)
        graph.add_message(
            Message(
                f"m{source}_{destination}",
                f"P{source}",
                f"P{destination}",
                transmission_time=transmission,
            )
        )

    node_types = [
        NodeType(f"T{name}", [HVersion(1, 1.0), HVersion(2, 2.0)])
        for name in node_names
    ]
    profile = ExecutionProfile()
    for index in range(n_processes):
        for node_type in node_types:
            for level in (1, 2):
                profile.add_entry(
                    f"P{index}", node_type.name, level, draw(DURATION), 1e-6
                )
    base_architecture = Architecture(
        [Node(name, node_type) for name, node_type in zip(node_names, node_types)]
    )
    base_mapping = ProcessMapping(
        {
            f"P{index}": draw(st.sampled_from(node_names))
            for index in range(n_processes)
        }
    )

    n_rows = draw(st.integers(min_value=1, max_value=4))
    rows = []
    for _ in range(n_rows):
        architecture = base_architecture.copy()
        for name in node_names:
            architecture.node(name).hardening = draw(st.sampled_from([1, 2]))
        mapping = base_mapping.copy()
        if draw(st.booleans()):
            process = draw(st.sampled_from(sorted(base_mapping.mapped_names())))
            mapping = mapping.moved(process, draw(st.sampled_from(node_names)))
        budgets = {
            name: draw(st.integers(min_value=0, max_value=3))
            for name in node_names
        }
        rows.append((architecture, mapping, budgets))
    slack_sharing = draw(st.booleans())

    if draw(st.booleans()):
        slot_length = max(
            max_transmission, draw(st.sampled_from([0.5, 1.0, 3.0]))
        )
        make_bus = lambda: TDMABus(  # noqa: E731
            slot_order=list(node_names), slot_length=slot_length
        )
    else:
        make_bus = SimpleBus
    return application, rows, profile, slack_sharing, make_bus


@pytest.mark.parametrize("name", ALL_SCHED)
@given(problem=sched_batches())
@settings(max_examples=75, deadline=None)
def test_batch_schedule_rowwise_identical(name, problem):
    application, rows, profile, slack_sharing, make_bus = problem
    reference = ListScheduler(
        bus=make_bus(), slack_sharing=slack_sharing, kernel="reference"
    )
    expected = [
        reference.schedule(application, architecture, mapping, profile, budgets)
        for architecture, mapping, budgets in rows
    ]
    scheduler = ListScheduler(
        bus=make_bus(), slack_sharing=slack_sharing, kernel=name
    )
    produced = scheduler.schedule_batch(application, rows, profile)
    assert produced == expected, f"{name} batch drifted"
    for first, second in zip(produced, expected):
        assert first.length == second.length
        assert hash(first) == hash(second)


@pytest.mark.parametrize("name", ALL_SCHED)
@given(problem=sched_batches())
@settings(max_examples=30, deadline=None)
def test_batch_then_scalar_reuse_stays_identical(name, problem):
    """A scalar call after a batch on the same scheduler instance must not
    see stale per-mapping tables (the batch memo widening is batch-local)."""
    application, rows, profile, slack_sharing, make_bus = problem
    scheduler = ListScheduler(
        bus=make_bus(), slack_sharing=slack_sharing, kernel=name
    )
    batched = scheduler.schedule_batch(application, rows, profile)
    architecture, mapping, budgets = rows[0]
    again = scheduler.schedule(application, architecture, mapping, profile, budgets)
    assert again == batched[0]


@pytest.mark.parametrize("name", ALL_SCHED)
def test_empty_sched_batch_returns_empty(name):
    application = Application(
        "empty", deadline=10.0, reliability_goal=0.9, recovery_overhead=0.0
    )
    application.new_graph("G").add_process(Process("P0", nominal_wcet=1.0))
    scheduler = ListScheduler(kernel=name)
    assert scheduler.schedule_batch(application, [], ExecutionProfile()) == []
