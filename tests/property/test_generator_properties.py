"""Property-based tests for the synthetic benchmark generator."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generator.benchmark import BenchmarkConfig, build_platform, generate_benchmark
from repro.generator.taskgraph import generate_task_graph


def _benchmark_fingerprint(seed: int) -> Dict[str, Any]:
    """Exhaustive structural fingerprint of one generated benchmark.

    Module-level so the cross-process reproducibility test can ship it to a
    worker via :class:`ProcessPoolExecutor`.
    """
    benchmark = generate_benchmark(
        seed, config=BenchmarkConfig(n_processes=10, n_node_types=3)
    )
    application = benchmark.application
    graph = application.graphs[0]
    return {
        "deadline": application.deadline,
        "gamma": application.gamma,
        "wcets": [p.nominal_wcet for p in application.processes()],
        "recovery": [
            application.recovery_overhead_of(p.name) for p in application.processes()
        ],
        "messages": sorted(
            (m.source, m.destination, m.transmission_time) for m in graph.messages
        ),
        "node_specs": [
            (s.name, s.base_cost, s.speed_factor) for s in benchmark.node_specs
        ],
    }


class TestTaskGraphProperties:
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_generated_graph_is_a_dag_of_requested_size(self, n_processes, seed):
        graph = generate_task_graph("g", n_processes, np.random.default_rng(seed))
        assert len(graph) == n_processes
        order = graph.topological_order()
        assert len(order) == n_processes
        position = {name: index for index, name in enumerate(order)}
        for message in graph.messages:
            assert position[message.source] < position[message.destination]

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_every_non_source_has_a_predecessor(self, n_processes, seed):
        graph = generate_task_graph("g", n_processes, np.random.default_rng(seed))
        sources = set(graph.sources())
        for name in graph.process_names:
            if name not in sources:
                assert graph.predecessors(name)


class TestBenchmarkProperties:
    seeds = st.integers(min_value=0, max_value=10_000)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_benchmark_is_always_a_valid_problem(self, seed):
        benchmark = generate_benchmark(
            seed, config=BenchmarkConfig(n_processes=12, n_node_types=3)
        )
        benchmark.application.validate()
        assert benchmark.application.deadline > 0
        assert 0.0 < benchmark.application.gamma < 1.0
        assert len(benchmark.node_specs) == 3

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_platform_profiles_are_complete_and_monotone(self, seed):
        benchmark = generate_benchmark(
            seed, config=BenchmarkConfig(n_processes=8, n_node_types=2)
        )
        node_types, profile = build_platform(benchmark, 1e-11, 25.0)
        profile.validate_against(benchmark.application, node_types)
        for process in benchmark.application.process_names():
            for node_type in node_types:
                wcets = [
                    profile.wcet(process, node_type.name, level)
                    for level in node_type.hardening_levels
                ]
                failures = [
                    profile.failure_probability(process, node_type.name, level)
                    for level in node_type.hardening_levels
                ]
                assert wcets == sorted(wcets)
                assert failures == sorted(failures, reverse=True)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_same_seed_is_bit_reproducible_in_process(self, seed):
        # Full structural fingerprint (graph, WCETs, overheads, platform):
        # repeated generation from one seed must be *bit*-identical, which is
        # what makes scenario-family reports rerun-stable.
        assert _benchmark_fingerprint(seed) == _benchmark_fingerprint(seed)

    def test_same_seed_is_bit_reproducible_across_processes(self):
        # The parallel sweep regenerates benchmarks in worker processes; the
        # fingerprint must not depend on process state (hash randomization,
        # import order).
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_benchmark_fingerprint, 123).result()
        assert remote == _benchmark_fingerprint(123)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_benchmark(self, seed):
        config = BenchmarkConfig(n_processes=10, n_node_types=2)
        first = generate_benchmark(seed, config=config)
        second = generate_benchmark(seed, config=config)
        assert first.application.deadline == second.application.deadline
        assert first.application.gamma == second.application.gamma
        assert [p.nominal_wcet for p in first.application.processes()] == [
            p.nominal_wcet for p in second.application.processes()
        ]
