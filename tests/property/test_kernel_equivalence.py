"""Bit-identity property suite for the pluggable SFP kernel backends.

Every registered backend must return, for every input, the exact float the
``reference`` backend returns — this is the contract that makes kernel
selection a pure speed knob and keeps memoized/persisted design points valid
across backends.  Hypothesis drives randomized probability tuples, budgets
and rounding accuracies through every registered backend, including:

* the decimal accuracies on both sides of the array backend's integer-quanta
  cutoff (``MAX_FAST_DECIMALS``), so the fallback path is exercised;
* inputs wide enough to trigger the numpy row-recurrence path
  (``NUMPY_MIN_WIDTH``), so its accumulate order is pinned too;
* grid-aligned, near-grid and degenerate (0.0 / 1.0) probabilities, where
  shortest-repr rounding semantics are most fragile.

Identity is asserted with ``math.isclose``-free exact ``==`` on purpose:
close is not a thing here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import ModelError
from repro.kernels import get_kernel, kernel_names
from repro.kernels.array_backend import MAX_FAST_DECIMALS, NUMPY_MIN_WIDTH
from repro.kernels.reference import ReferenceKernel

REFERENCE = get_kernel("reference")

#: All non-reference backends (the property is trivially true for reference).
OTHER_KERNELS = [
    name for name in kernel_names(available_only=True) if name != "reference"
]

#: Rounding accuracies: the paper's 11, coarse grids, the fast-path cutoff
#: and one value beyond it (exercising the Decimal fallback).
DECIMALS = st.sampled_from([2, 5, 11, MAX_FAST_DECIMALS, MAX_FAST_DECIMALS + 3])

#: Individual failure probabilities across the magnitudes the fault model
#: produces (SER ~1e-12..1e-9 per cycle scaled by WCET) plus adversarial
#: grid-aligned values.
PROBABILITY = st.one_of(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e-9, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e-4, allow_nan=False),
    st.sampled_from([0.0, 1.0, 0.5, 0.1, 0.3, 1e-11, 3e-11, 1.2e-5]),
    st.integers(min_value=0, max_value=10 ** 11).map(lambda n: n / 10 ** 11),
)

PROBABILITIES = st.lists(PROBABILITY, min_size=0, max_size=12)
WIDE_PROBABILITIES = st.lists(
    PROBABILITY, min_size=NUMPY_MIN_WIDTH, max_size=NUMPY_MIN_WIDTH + 80
)
BUDGET = st.integers(min_value=0, max_value=8)


@pytest.mark.parametrize("name", OTHER_KERNELS)
@given(probabilities=PROBABILITIES, budget=BUDGET, decimals=DECIMALS)
@settings(max_examples=300, deadline=None)
def test_probability_exceeds_bit_identical(name, probabilities, budget, decimals):
    kernel = get_kernel(name)
    expected = REFERENCE.probability_exceeds(probabilities, budget, decimals)
    produced = kernel.probability_exceeds(probabilities, budget, decimals)
    assert produced == expected, (
        f"{name} drifted: {produced.hex()} != {expected.hex()} "
        f"for {probabilities!r}, k={budget}, decimals={decimals}"
    )


@pytest.mark.parametrize("name", OTHER_KERNELS)
@given(probabilities=WIDE_PROBABILITIES, budget=BUDGET)
@settings(max_examples=50, deadline=None)
def test_probability_exceeds_wide_inputs(name, probabilities, budget):
    """Wide tuples route the array backend through the numpy recurrence."""
    kernel = get_kernel(name)
    expected = REFERENCE.probability_exceeds(probabilities, budget)
    assert kernel.probability_exceeds(probabilities, budget) == expected


@pytest.mark.parametrize("name", OTHER_KERNELS)
@given(probabilities=PROBABILITIES, decimals=DECIMALS)
@settings(max_examples=200, deadline=None)
def test_probability_no_fault_bit_identical(name, probabilities, decimals):
    kernel = get_kernel(name)
    expected = REFERENCE.probability_no_fault(probabilities, decimals)
    assert kernel.probability_no_fault(probabilities, decimals) == expected


@pytest.mark.parametrize("name", OTHER_KERNELS)
@given(
    exceedances=st.lists(PROBABILITY, min_size=0, max_size=6),
    decimals=DECIMALS,
)
@settings(max_examples=200, deadline=None)
def test_system_failure_bit_identical(name, exceedances, decimals):
    kernel = get_kernel(name)
    expected = REFERENCE.system_failure(exceedances, decimals)
    assert kernel.system_failure(exceedances, decimals) == expected


@pytest.mark.parametrize("name", kernel_names(available_only=True))
def test_negative_budget_rejected(name):
    with pytest.raises(ModelError):
        get_kernel(name).probability_exceeds([0.1], -1)


@pytest.mark.parametrize("name", kernel_names(available_only=True))
def test_out_of_range_probability_rejected(name):
    kernel = get_kernel(name)
    with pytest.raises(ValueError):
        kernel.probability_exceeds([1.5], 1)
    with pytest.raises(ValueError):
        kernel.system_failure([-0.1])


def test_reference_is_the_reference():
    """The registry's ``reference`` entry is the pure-Python specification."""
    assert isinstance(REFERENCE, ReferenceKernel)
    assert type(REFERENCE) is ReferenceKernel
