"""Property-based tests for mappings and the greedy initial mapping."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architecture import Architecture, Node
from repro.core.mapping import MappingAlgorithm
from repro.core.mapping_model import ProcessMapping
from repro.generator.benchmark import BenchmarkConfig, build_platform, generate_benchmark


class TestProcessMappingProperties:
    assignments = st.dictionaries(
        keys=st.sampled_from([f"P{i}" for i in range(1, 9)]),
        values=st.sampled_from(["N1", "N2", "N3"]),
        min_size=1,
        max_size=8,
    )

    @given(assignments)
    def test_processes_on_partitions_the_mapping(self, assignment):
        mapping = ProcessMapping(assignment)
        collected = []
        for node in set(assignment.values()):
            collected.extend(mapping.processes_on(node))
        assert sorted(collected) == sorted(assignment)

    @given(assignments, st.sampled_from(["N1", "N2", "N3"]))
    def test_moved_changes_exactly_one_entry(self, assignment, target):
        mapping = ProcessMapping(assignment)
        process = sorted(assignment)[0]
        moved = mapping.moved(process, target)
        assert moved.node_of(process) == target
        for other in assignment:
            if other != process:
                assert moved.node_of(other) == mapping.node_of(other)

    @given(assignments)
    def test_copy_equals_original(self, assignment):
        mapping = ProcessMapping(assignment)
        assert mapping.copy() == mapping
        assert hash(mapping.copy()) == hash(mapping)


class TestInitialMappingProperties:
    @given(st.integers(min_value=1, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_greedy_initial_mapping_is_always_valid(self, seed):
        benchmark = generate_benchmark(
            seed, config=BenchmarkConfig(n_processes=10, n_node_types=3)
        )
        node_types, profile = build_platform(benchmark, 1e-11, 25.0)
        architecture = Architecture([Node(nt.name, nt) for nt in node_types[:2]])
        architecture.set_min_hardening()
        mapping = MappingAlgorithm().initial_mapping(
            benchmark.application, architecture, profile
        )
        mapping.validate(benchmark.application, architecture, profile)
        # The load balancer should not leave a node idle while the other holds
        # everything, unless the instance is degenerate (it never is here).
        assert len(mapping.used_nodes()) == 2
