"""Property-based tests for the checkpointing and replication policies."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.checkpointing import (
    optimal_checkpoint_count,
    worst_case_execution_with_checkpoints,
)
from repro.policies.replication import replication_failure_probability


class TestCheckpointingProperties:
    wcets = st.floats(min_value=1.0, max_value=500.0, allow_nan=False)
    overheads = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)
    faults = st.integers(min_value=0, max_value=6)

    @given(wcets, faults, overheads, overheads)
    def test_optimal_count_is_no_worse_than_any_small_count(
        self, wcet, faults, chi, mu
    ):
        best = optimal_checkpoint_count(wcet, faults, chi, mu)
        best_cost = worst_case_execution_with_checkpoints(wcet, best, faults, chi, mu)
        for count in range(1, 33):
            assert best_cost <= worst_case_execution_with_checkpoints(
                wcet, count, faults, chi, mu
            ) + 1e-6

    @given(wcets, faults, overheads, overheads, st.integers(min_value=1, max_value=30))
    def test_worst_case_grows_with_faults(self, wcet, faults, chi, mu, checkpoints):
        current = worst_case_execution_with_checkpoints(wcet, checkpoints, faults, chi, mu)
        more_faults = worst_case_execution_with_checkpoints(
            wcet, checkpoints, faults + 1, chi, mu
        )
        assert more_faults >= current

    @given(wcets, faults, overheads, overheads)
    def test_worst_case_at_least_fault_free_time(self, wcet, faults, chi, mu):
        count = optimal_checkpoint_count(wcet, faults, chi, mu)
        assert worst_case_execution_with_checkpoints(wcet, count, faults, chi, mu) >= wcet


class TestReplicationProperties:
    replica_probabilities = st.lists(
        st.floats(min_value=1e-9, max_value=0.5, allow_nan=False), min_size=1, max_size=6
    )

    @given(replica_probabilities)
    def test_result_is_a_probability(self, values):
        assert 0.0 <= replication_failure_probability(values) <= 1.0

    @given(replica_probabilities, st.floats(min_value=1e-9, max_value=0.5))
    def test_adding_a_replica_never_hurts(self, values, extra):
        assert replication_failure_probability(values + [extra]) <= (
            replication_failure_probability(values) + 1e-12
        )

    @given(replica_probabilities)
    def test_joint_failure_no_better_than_best_replica(self, values):
        # Pessimistic rounding may lift the product slightly, but never above
        # the most reliable replica's own failure probability (plus quantum).
        assert replication_failure_probability(values) <= min(values) + 1e-11
