"""Property-based tests for the pessimistic rounding helpers."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rounding import ceil_probability, floor_probability

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
decimals = st.integers(min_value=1, max_value=12)


class TestRoundingProperties:
    @given(unit_floats, decimals)
    def test_floor_at_most_value(self, value, digits):
        assert floor_probability(value, digits) <= value + 1e-15

    @given(unit_floats, decimals)
    def test_ceil_at_least_value(self, value, digits):
        assert ceil_probability(value, digits) >= value - 1e-15

    @given(unit_floats, decimals)
    def test_results_stay_in_unit_interval(self, value, digits):
        assert 0.0 <= floor_probability(value, digits) <= 1.0
        assert 0.0 <= ceil_probability(value, digits) <= 1.0

    @given(unit_floats, decimals)
    def test_floor_not_above_ceil(self, value, digits):
        assert floor_probability(value, digits) <= ceil_probability(value, digits)

    @given(unit_floats, decimals)
    def test_rounding_is_idempotent(self, value, digits):
        floored = floor_probability(value, digits)
        ceiled = ceil_probability(value, digits)
        assert floor_probability(floored, digits) == floored
        assert ceil_probability(ceiled, digits) == ceiled

    @given(unit_floats, unit_floats, decimals)
    def test_rounding_preserves_order(self, first, second, digits):
        low, high = min(first, second), max(first, second)
        assert floor_probability(low, digits) <= floor_probability(high, digits)
        assert ceil_probability(low, digits) <= ceil_probability(high, digits)
