"""Bit-identity property suite for the pluggable scheduler kernel backends.

Every registered scheduler backend must return, for every input, a
``Schedule`` that is value-equal (``Schedule.__eq__`` — every process window,
message window, recovery-slack reservation, budget and hardening level, down
to the last float bit) to the one the ``reference`` backend produces.  This
is the contract that makes ``--sched-kernel`` a pure speed knob and keeps
memoized/persisted design points valid across backends.

Hypothesis drives randomized problems through every registered backend:

* random DAGs (not just chains) with random WCETs, transmission times and
  recovery overheads, mapped arbitrarily onto 2-3 nodes with mixed hardening
  levels — so layers contain real priority ties, intra- and inter-node
  messages coexist, and some nodes may be left empty;
* both bus models: ``SimpleBus`` and ``TDMABus``, the latter including slot
  lengths a message fills *exactly* (``duration == slot_length``, the
  boundary of the fits-in-slot check) and zero-duration messages (which
  disable the flat backend's sorted-finish scan shortcut);
* naive and shared recovery slack, budgets 0..3 per node.

Equality is asserted with exact ``==`` on purpose — close is not a thing
here.  The seeded worst-case length and the adopted bus reservations are
checked against their lazily recomputed counterparts as well, so the flat
backend's fast paths cannot drift from the observable state a ``reserve``
call sequence would have left behind.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.bus import SimpleBus, TDMABus
from repro.core.application import Application, Message, Process
from repro.core.architecture import Architecture, HVersion, Node, NodeType
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.kernels import get_sched_kernel, sched_kernel_names
from repro.kernels.sched_reference import ReferenceSchedulerKernel
from repro.scheduling.list_scheduler import ListScheduler

REFERENCE = get_sched_kernel("reference")

#: All non-reference backends (the property is trivially true for reference).
OTHER_KERNELS = [
    name for name in sched_kernel_names(available_only=True) if name != "reference"
]

NODE_NAMES = ("NA", "NB", "NC")

#: WCETs/durations drawn from a small float pool on purpose: repeated values
#: provoke priority ties (resolved by process name) and same-start windows,
#: where ordering bugs between backends would otherwise hide.
DURATION = st.sampled_from([1.0, 2.0, 2.5, 3.0, 7.0, 10.0, 12.5])
TRANSMISSION = st.sampled_from([0.0, 0.5, 1.0, 2.0, 3.0])


@st.composite
def dag_problems(draw):
    """A random scheduling problem: DAG, platform, mapping, budgets, bus."""
    n_processes = draw(st.integers(min_value=1, max_value=9))
    n_nodes = draw(st.integers(min_value=2, max_value=3))
    node_names = NODE_NAMES[:n_nodes]

    application = Application(
        "prop", deadline=100_000.0, reliability_goal=0.9,
        recovery_overhead=draw(st.sampled_from([0.0, 1.0, 5.0])),
    )
    graph = application.new_graph("G")
    for index in range(n_processes):
        graph.add_process(Process(f"P{index}", nominal_wcet=10.0))
    # Random DAG: any (i, j) with i < j may carry a message, so generated
    # layers range from one wide layer (no edges) to a single chain.
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_processes - 1),
                st.integers(min_value=0, max_value=n_processes - 1),
            ).filter(lambda pair: pair[0] < pair[1]),
            unique=True,
            max_size=2 * n_processes,
        )
    )
    max_transmission = 0.0
    for source, destination in edges:
        transmission = draw(TRANSMISSION)
        max_transmission = max(max_transmission, transmission)
        graph.add_message(
            Message(
                f"m{source}_{destination}",
                f"P{source}",
                f"P{destination}",
                transmission_time=transmission,
            )
        )

    node_types = [
        NodeType(f"T{name}", [HVersion(1, 1.0), HVersion(2, 2.0)])
        for name in node_names
    ]
    profile = ExecutionProfile()
    for index in range(n_processes):
        for node_type in node_types:
            for level in (1, 2):
                profile.add_entry(
                    f"P{index}", node_type.name, level, draw(DURATION), 1e-6
                )
    architecture = Architecture(
        [
            Node(name, node_type, hardening=draw(st.sampled_from([1, 2])))
            for name, node_type in zip(node_names, node_types)
        ]
    )
    mapping = ProcessMapping(
        {
            f"P{index}": draw(st.sampled_from(node_names))
            for index in range(n_processes)
        }
    )
    budgets = {
        name: draw(st.integers(min_value=0, max_value=3)) for name in node_names
    }
    slack_sharing = draw(st.booleans())

    if draw(st.booleans()):
        # Slot lengths down to the largest transmission time exactly: a
        # message may fill its sender's slot with zero margin.
        slot_length = max(max_transmission, draw(st.sampled_from([0.5, 1.0, 3.0, 4.0])))
        make_bus = lambda: TDMABus(slot_order=list(node_names), slot_length=slot_length)
    else:
        make_bus = SimpleBus

    return application, architecture, mapping, profile, budgets, slack_sharing, make_bus


def _schedule_with(kernel_name, problem):
    """Run one backend on its own bus instance; return (schedule, bus)."""
    application, architecture, mapping, profile, budgets, slack_sharing, make_bus = problem
    bus = make_bus()
    scheduler = ListScheduler(bus=bus, slack_sharing=slack_sharing, kernel=kernel_name)
    schedule = scheduler.schedule(application, architecture, mapping, profile, budgets)
    return schedule, bus


@pytest.mark.parametrize("name", OTHER_KERNELS)
@given(problem=dag_problems())
@settings(max_examples=150, deadline=None)
def test_schedules_value_equal_across_backends(name, problem):
    expected, reference_bus = _schedule_with("reference", problem)
    produced, bus = _schedule_with(name, problem)
    assert produced == expected, (
        f"{name} drifted from reference:\n"
        f"produced:\n{produced.as_gantt_text()}\n"
        f"expected:\n{expected.as_gantt_text()}"
    )
    # Equal schedules must agree on every derived quantity bit for bit.
    assert produced.length == expected.length
    assert produced.fault_free_length == expected.fault_free_length
    assert hash(produced) == hash(expected)
    # The backend must leave the bus in the state the reference reserve
    # sequence produces (adopted windows materialize to equal reservations).
    assert bus.reservations == reference_bus.reservations


@pytest.mark.parametrize("name", OTHER_KERNELS)
@given(problem=dag_problems())
@settings(max_examples=60, deadline=None)
def test_seeded_length_matches_lazy_recomputation(name, problem):
    """The kernel-seeded worst-case length is the float the property computes."""
    produced, _ = _schedule_with(name, problem)
    seeded = produced.length
    produced._length = None  # force the lazy per-node recomputation
    assert produced.length == seeded


@pytest.mark.parametrize("name", OTHER_KERNELS)
@given(problem=dag_problems())
@settings(max_examples=40, deadline=None)
def test_backends_validate_and_reuse_structures(name, problem):
    """Back-to-back runs on one scheduler instance stay identical (memo reuse)."""
    application, architecture, mapping, profile, budgets, slack_sharing, make_bus = problem
    scheduler = ListScheduler(
        bus=make_bus(), slack_sharing=slack_sharing, kernel=name
    )
    first = scheduler.schedule(application, architecture, mapping, profile, budgets)
    first.validate()
    second = scheduler.schedule(application, architecture, mapping, profile, budgets)
    assert second == first


# ----------------------------------------------------------------------
# Deterministic TDMA boundary cases.
# ----------------------------------------------------------------------
def _two_node_problem(transmission, slot_length):
    """P0 on NA feeds P1 on NB over a TDMA bus."""
    application = Application(
        "tdma", deadline=10_000.0, reliability_goal=0.9, recovery_overhead=1.0
    )
    graph = application.new_graph("G")
    graph.add_process(Process("P0", nominal_wcet=5.0))
    graph.add_process(Process("P1", nominal_wcet=5.0))
    graph.add_message(Message("m0", "P0", "P1", transmission_time=transmission))
    node_types = [NodeType("TA", [HVersion(1, 1.0)]), NodeType("TB", [HVersion(1, 1.0)])]
    profile = ExecutionProfile()
    for process in ("P0", "P1"):
        for node_type in node_types:
            profile.add_entry(process, node_type.name, 1, 5.0, 1e-6)
    architecture = Architecture(
        [Node("NA", node_types[0]), Node("NB", node_types[1])]
    )
    mapping = ProcessMapping({"P0": "NA", "P1": "NB"})
    budgets = {"NA": 1, "NB": 1}
    make_bus = lambda: TDMABus(slot_order=["NA", "NB"], slot_length=slot_length)
    return application, architecture, mapping, profile, budgets, True, make_bus


@pytest.mark.parametrize("name", OTHER_KERNELS)
def test_message_exactly_filling_tdma_slot(name):
    """duration == slot_length is feasible and bit-identical across backends."""
    problem = _two_node_problem(transmission=4.0, slot_length=4.0)
    expected, _ = _schedule_with("reference", problem)
    produced, _ = _schedule_with(name, problem)
    assert produced == expected
    entry = produced.message_entry("m0")
    assert entry.duration == 4.0
    # The window must sit flush inside one of NA's slots (slot 0 of each
    # 8 ms round), not straddle a boundary.
    assert entry.start % 8.0 == 0.0


@pytest.mark.parametrize("name", sched_kernel_names(available_only=True))
def test_oversized_tdma_message_rejected_identically(name):
    from repro.core.exceptions import SchedulingError

    problem = _two_node_problem(transmission=4.5, slot_length=4.0)
    with pytest.raises(SchedulingError, match="does not fit into a TDMA slot"):
        _schedule_with(name, problem)


def test_reference_is_the_reference():
    """The registry's ``reference`` entry is the per-object specification."""
    assert type(REFERENCE) is ReferenceSchedulerKernel
