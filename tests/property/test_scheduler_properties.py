"""Property-based tests for the list scheduler and recovery slack."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.application import Application, Message, Process
from repro.core.architecture import Architecture, HVersion, Node, NodeType
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.scheduling.list_scheduler import ListScheduler
from repro.scheduling.slack import naive_recovery_slack, shared_recovery_slack


# ----------------------------------------------------------------------
# Random chain applications: P1 -> P2 -> ... -> Pn mapped round-robin on two
# nodes.  Chains keep the generation simple while still exercising bus
# messages, node contention and slack accounting.
# ----------------------------------------------------------------------
@st.composite
def chain_problems(draw):
    n_processes = draw(st.integers(min_value=1, max_value=8))
    wcets = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
            min_size=n_processes,
            max_size=n_processes,
        )
    )
    message_time = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    budgets = (
        draw(st.integers(min_value=0, max_value=3)),
        draw(st.integers(min_value=0, max_value=3)),
    )

    application = Application(
        "prop", deadline=10_000.0, reliability_goal=0.9, recovery_overhead=1.0
    )
    graph = application.new_graph("G")
    previous = None
    for index, wcet in enumerate(wcets, start=1):
        process = graph.add_process(Process(f"P{index}", nominal_wcet=wcet))
        if previous is not None:
            graph.add_message(
                Message(f"m{index}", previous.name, process.name, transmission_time=message_time)
            )
        previous = process

    node_types = [
        NodeType("NA", [HVersion(1, 1.0)]),
        NodeType("NB", [HVersion(1, 1.0)]),
    ]
    profile = ExecutionProfile()
    for process in application.processes():
        for node_type in node_types:
            profile.add_entry(process.name, node_type.name, 1, process.nominal_wcet, 1e-6)
    architecture = Architecture([Node("NA", node_types[0]), Node("NB", node_types[1])])
    mapping = ProcessMapping(
        {
            process.name: ("NA" if index % 2 == 0 else "NB")
            for index, process in enumerate(application.processes())
        }
    )
    reexecutions = {"NA": budgets[0], "NB": budgets[1]}
    return application, architecture, mapping, profile, reexecutions


class TestSchedulerProperties:
    @given(chain_problems())
    @settings(max_examples=40, deadline=None)
    def test_schedule_is_structurally_valid(self, problem):
        application, architecture, mapping, profile, reexecutions = problem
        schedule = ListScheduler().schedule(
            application, architecture, mapping, profile, reexecutions
        )
        schedule.validate()

    @given(chain_problems())
    @settings(max_examples=40, deadline=None)
    def test_all_processes_scheduled_exactly_once(self, problem):
        application, architecture, mapping, profile, reexecutions = problem
        schedule = ListScheduler().schedule(
            application, architecture, mapping, profile, reexecutions
        )
        scheduled = {entry.process for entry in schedule.processes}
        assert scheduled == set(application.process_names())

    @given(chain_problems())
    @settings(max_examples=40, deadline=None)
    def test_precedence_constraints_hold(self, problem):
        application, architecture, mapping, profile, reexecutions = problem
        schedule = ListScheduler().schedule(
            application, architecture, mapping, profile, reexecutions
        )
        for graph in application.graphs:
            for message in graph.messages:
                assert (
                    schedule.entry(message.destination).start
                    >= schedule.entry(message.source).finish - 1e-9
                )

    @given(chain_problems())
    @settings(max_examples=40, deadline=None)
    def test_length_at_least_fault_free_and_total_work_bound(self, problem):
        application, architecture, mapping, profile, reexecutions = problem
        schedule = ListScheduler().schedule(
            application, architecture, mapping, profile, reexecutions
        )
        assert schedule.length >= schedule.fault_free_length - 1e-9
        total_work = sum(process.nominal_wcet for process in application.processes())
        # A single chain cannot finish before the longest node's share of work.
        per_node_work = {
            node.name: sum(
                profile.wcet_on_node(process, node)
                for process in mapping.processes_on(node.name)
            )
            for node in architecture
        }
        assert schedule.fault_free_length >= max(per_node_work.values()) - 1e-9
        assert schedule.fault_free_length <= total_work + sum(
            message.transmission_time for message in application.messages()
        ) + 1e-6

    @given(chain_problems())
    @settings(max_examples=40, deadline=None)
    def test_more_reexecutions_never_shorten_the_schedule(self, problem):
        application, architecture, mapping, profile, reexecutions = problem
        schedule = ListScheduler().schedule(
            application, architecture, mapping, profile, reexecutions
        )
        increased = {node: budget + 1 for node, budget in reexecutions.items()}
        longer = ListScheduler().schedule(
            application, architecture, mapping, profile, increased
        )
        assert longer.length >= schedule.length - 1e-9

    @given(chain_problems())
    @settings(max_examples=40, deadline=None)
    def test_naive_slack_never_beats_shared_slack(self, problem):
        application, architecture, mapping, profile, reexecutions = problem
        shared = ListScheduler(slack_sharing=True).schedule(
            application, architecture, mapping, profile, reexecutions
        )
        naive = ListScheduler(slack_sharing=False).schedule(
            application, architecture, mapping, profile, reexecutions
        )
        assert naive.length >= shared.length - 1e-9


class TestSlackFunctionProperties:
    pairs = st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        min_size=0,
        max_size=10,
    )

    @given(pairs, st.integers(min_value=0, max_value=5))
    def test_shared_never_exceeds_naive(self, values, budget):
        assert shared_recovery_slack(values, budget) <= naive_recovery_slack(values, budget) + 1e-9

    @given(pairs, st.integers(min_value=0, max_value=5))
    def test_slack_monotone_in_budget(self, values, budget):
        assert shared_recovery_slack(values, budget + 1) >= shared_recovery_slack(values, budget)

    @given(pairs, st.integers(min_value=0, max_value=5))
    def test_slack_non_negative(self, values, budget):
        assert shared_recovery_slack(values, budget) >= 0.0
        assert naive_recovery_slack(values, budget) >= 0.0
