"""Property-based tests for the SFP analysis invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sfp import (
    complete_homogeneous_sum,
    enumerate_fault_scenarios,
    probability_exactly,
    probability_exceeds,
    probability_no_fault,
    reliability_over_time_unit,
    system_failure_probability,
)

#: Realistic per-process failure probabilities (the paper works with 1e-10..1e-2).
probabilities = st.lists(
    st.floats(min_value=0.0, max_value=0.05, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=8,
)
non_empty_probabilities = st.lists(
    st.floats(min_value=1e-12, max_value=0.05, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
)


class TestNoFaultProperties:
    @given(probabilities)
    def test_result_is_a_probability(self, values):
        result = probability_no_fault(values)
        assert 0.0 <= result <= 1.0

    @given(non_empty_probabilities)
    def test_adding_a_process_never_increases_survival(self, values):
        with_all = probability_no_fault(values)
        without_last = probability_no_fault(values[:-1])
        assert with_all <= without_last + 1e-12

    @given(probabilities)
    def test_never_exceeds_exact_product(self, values):
        exact = 1.0
        for value in values:
            exact *= 1.0 - value
        assert probability_no_fault(values) <= exact + 1e-15


class TestHomogeneousSumProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.1, allow_nan=False), min_size=0, max_size=5
        ),
        st.integers(min_value=0, max_value=4),
    )
    def test_dp_matches_enumeration(self, values, faults):
        dp_value = complete_homogeneous_sum(values, faults)
        reference = sum(enumerate_fault_scenarios(values, faults))
        assert abs(dp_value - reference) <= 1e-12 + 1e-9 * reference

    @given(non_empty_probabilities, st.integers(min_value=0, max_value=5))
    def test_non_negative(self, values, faults):
        assert complete_homogeneous_sum(values, faults) >= 0.0


class TestExceedanceProperties:
    @given(non_empty_probabilities, st.integers(min_value=0, max_value=6))
    def test_result_is_a_probability(self, values, budget):
        assert 0.0 <= probability_exceeds(values, budget) <= 1.0

    @given(non_empty_probabilities, st.integers(min_value=0, max_value=5))
    def test_monotone_decreasing_in_budget(self, values, budget):
        assert probability_exceeds(values, budget + 1) <= probability_exceeds(values, budget) + 1e-12

    @given(non_empty_probabilities, st.integers(min_value=0, max_value=4))
    def test_total_probability_never_exceeds_one(self, values, budget):
        survival = probability_no_fault(values)
        survival += sum(probability_exactly(values, f) for f in range(1, budget + 1))
        # The (rounded) split into disjoint events stays a valid distribution.
        assert survival <= 1.0 + 1e-9

    @given(non_empty_probabilities)
    def test_exceeding_zero_with_positive_probabilities_is_positive(self, values):
        assert probability_exceeds(values, 0) > 0.0


class TestSystemUnionProperties:
    node_probabilities = st.lists(
        st.floats(min_value=0.0, max_value=0.01, allow_nan=False), min_size=1, max_size=6
    )

    @given(node_probabilities)
    def test_union_bounds(self, values):
        union = system_failure_probability(values)
        assert max(values) <= union + 1e-12
        assert union <= min(1.0, sum(values) + 1e-9)

    @given(node_probabilities)
    def test_union_is_a_probability(self, values):
        assert 0.0 <= system_failure_probability(values) <= 1.0

    @given(node_probabilities, st.floats(min_value=0.0, max_value=0.01))
    def test_adding_a_node_never_helps(self, values, extra):
        assert system_failure_probability(values + [extra]) >= system_failure_probability(values) - 1e-12


class TestReliabilityProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e-4),
        st.floats(min_value=1.0, max_value=1e4),
    )
    def test_reliability_is_a_probability(self, failure, period):
        reliability = reliability_over_time_unit(failure, 3.6e6, period)
        assert 0.0 <= reliability <= 1.0

    @given(
        st.floats(min_value=1e-12, max_value=1e-5),
        st.floats(min_value=1.0, max_value=1e4),
    )
    def test_shorter_period_means_more_iterations_and_lower_reliability(
        self, failure, period
    ):
        shorter = reliability_over_time_unit(failure, 3.6e6, period)
        longer = reliability_over_time_unit(failure, 3.6e6, period * 2)
        assert shorter <= longer + 1e-12
