"""Unit tests for the derived reliability and cost analyses."""

from __future__ import annotations

import math

import pytest

from repro.analysis.cost import (
    architecture_cost_breakdown,
    relative_cost_saving,
)
from repro.analysis.reliability import (
    failures_in_time,
    mean_time_to_failure_hours,
    mission_reliability,
    probability_of_failure_per_hour,
)
from repro.core.architecture import Architecture, Node


class TestReliabilityConversions:
    def test_per_hour_failure_matches_appendix(self):
        # Appendix A.2, k=1: 9.6e-10 per 360 ms iteration.
        per_hour = probability_of_failure_per_hour(9.6e-10, 360.0)
        assert per_hour == pytest.approx(1 - 0.99999040005, rel=1e-4)

    def test_zero_failure(self):
        assert probability_of_failure_per_hour(0.0, 100.0) == 0.0
        assert math.isinf(mean_time_to_failure_hours(0.0, 100.0))
        assert failures_in_time(0.0, 100.0) == 0.0

    def test_mission_reliability_decreases_with_duration(self):
        short = mission_reliability(1e-9, 100.0, mission_hours=1.0)
        long = mission_reliability(1e-9, 100.0, mission_hours=1000.0)
        assert long < short <= 1.0

    def test_mttf_and_fit_are_consistent(self):
        mttf = mean_time_to_failure_hours(1e-8, 100.0)
        fit = failures_in_time(1e-8, 100.0)
        assert fit == pytest.approx(1e9 / mttf)

    def test_mttf_decreases_with_failure_probability(self):
        assert mean_time_to_failure_hours(1e-6, 100.0) < mean_time_to_failure_hours(
            1e-9, 100.0
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            probability_of_failure_per_hour(1.5, 100.0)
        with pytest.raises(ValueError):
            probability_of_failure_per_hour(0.5, 0.0)
        with pytest.raises(ValueError):
            mission_reliability(0.5, 100.0, 0.0)


class TestCostBreakdown:
    def test_breakdown_of_fig4a_architecture(self, fig4a_architecture):
        breakdown = architecture_cost_breakdown(fig4a_architecture)
        assert breakdown.total == pytest.approx(72.0)
        assert breakdown.baseline == pytest.approx(36.0)
        assert breakdown.hardening_overhead == pytest.approx(36.0)
        assert breakdown.overhead_fraction() == pytest.approx(0.5)
        assert breakdown.per_node == {"N1": 32.0, "N2": 40.0}

    def test_unhardened_architecture_has_no_overhead(self, fig1_nodes):
        n1, n2 = fig1_nodes
        architecture = Architecture([Node("N1", n1), Node("N2", n2)])
        breakdown = architecture_cost_breakdown(architecture)
        assert breakdown.hardening_overhead == 0.0
        assert breakdown.overhead_fraction() == 0.0

    def test_relative_cost_saving(self):
        assert relative_cost_saving(17.0, 50.0) == pytest.approx(0.66)
        assert relative_cost_saving(50.0, 50.0) == 0.0
        assert relative_cost_saving(60.0, 50.0) == 0.0
        assert relative_cost_saving(10.0, 0.0) == 0.0
