"""RunConfig: validation, serialization, and the documented resolution order.

The resolution order — explicit config field > environment variable > auto —
is the contract replacing the old flag/env/global-default plumbing; these
tests pin it for both kernel families.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import RunConfig
from repro.core.exceptions import ModelError
from repro.experiments.synthetic import ExperimentPreset
from repro.kernels import KERNEL_ENV_VAR, SCHED_KERNEL_ENV_VAR


@pytest.fixture(autouse=True)
def _no_env(monkeypatch):
    """Resolution tests control the env vars explicitly."""
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    monkeypatch.delenv(SCHED_KERNEL_ENV_VAR, raising=False)


class TestResolutionOrder:
    def test_explicit_arg_beats_env_sfp(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "array")
        config = RunConfig(sfp_kernel="reference")
        assert config.resolved_sfp_kernel() == "reference"

    def test_explicit_arg_beats_env_sched(self, monkeypatch):
        monkeypatch.setenv(SCHED_KERNEL_ENV_VAR, "flat")
        config = RunConfig(sched_kernel="reference")
        assert config.resolved_sched_kernel() == "reference"

    def test_env_beats_auto_sfp(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert RunConfig().resolved_sfp_kernel() == "reference"

    def test_env_beats_auto_sched(self, monkeypatch):
        monkeypatch.setenv(SCHED_KERNEL_ENV_VAR, "reference")
        assert RunConfig().resolved_sched_kernel() == "reference"

    def test_auto_when_nothing_is_set(self):
        # auto resolves to the fastest available backend of each family.
        assert RunConfig().resolved_sfp_kernel() == "array"
        assert RunConfig().resolved_sched_kernel() == "flat"

    def test_explicit_auto_resolves_to_a_concrete_backend(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        # An explicit "auto" is still an explicit selection: it bypasses env.
        assert RunConfig(sfp_kernel="auto").resolved_sfp_kernel() == "array"

    def test_unknown_kernel_name_is_rejected_at_resolution(self):
        with pytest.raises(ModelError, match="Unknown SFP kernel"):
            RunConfig(sfp_kernel="no-such-backend").resolved_sfp_kernel()


class TestValidation:
    def test_defaults_are_valid(self):
        config = RunConfig()
        assert config.preset == "fast"
        assert config.jobs == 1
        assert config.cache_dir is None

    def test_unknown_preset_rejected(self):
        with pytest.raises(ModelError, match="Unknown preset"):
            RunConfig(preset="warp-speed")

    def test_negative_jobs_rejected(self):
        with pytest.raises(ModelError, match="jobs must be >= 0"):
            RunConfig(jobs=-1)

    def test_tiny_cache_cap_rejected(self):
        with pytest.raises(ModelError, match="cache_size_mb"):
            RunConfig(cache_size_mb=0)

    def test_string_paths_are_coerced(self):
        config = RunConfig(cache_dir="/tmp/cache", output="/tmp/report.json")
        assert config.cache_dir == Path("/tmp/cache")
        assert config.output == Path("/tmp/report.json")

    def test_tilde_paths_are_expanded(self):
        config = RunConfig(cache_dir="~/.cache/repro")
        assert "~" not in str(config.cache_dir)
        assert config.cache_dir.is_absolute()


class TestPreset:
    def test_resolved_preset_matches_name(self):
        assert RunConfig(preset="smoke").resolved_preset() == ExperimentPreset.smoke()
        assert RunConfig(preset="fast").resolved_preset() == ExperimentPreset.fast()

    def test_seed_overrides_base_seed_only(self):
        preset = RunConfig(preset="fast", seed=42).resolved_preset()
        assert preset.base_seed == 42
        assert preset.n_applications == ExperimentPreset.fast().n_applications


class TestSerialization:
    def test_round_trip_defaults(self):
        config = RunConfig()
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_round_trip_fully_populated(self):
        config = RunConfig(
            sfp_kernel="reference",
            sched_kernel="flat",
            cache_dir=Path("/tmp/store"),
            cache_size_mb=64,
            jobs=2,
            seed=7,
            preset="smoke",
            output=Path("/tmp/out.json"),
        )
        data = config.to_dict()
        assert data["cache_dir"] == "/tmp/store"  # JSON-native
        assert RunConfig.from_dict(data) == config

    def test_unknown_fields_rejected(self):
        with pytest.raises(ModelError, match="Unknown RunConfig fields"):
            RunConfig.from_dict({"preset": "fast", "warp": 9})


class TestScenarioParams:
    def test_default_is_an_empty_dict(self):
        assert RunConfig().scenario_params == {}

    def test_round_trip(self):
        config = RunConfig(
            scenario_params={"n_processes": 100, "seed": "7", "ratio": 0.25}
        )
        data = config.to_dict()
        assert data["scenario_params"] == {"n_processes": 100, "seed": "7", "ratio": 0.25}
        assert RunConfig.from_dict(data) == config

    def test_mapping_is_normalized_to_a_plain_dict(self):
        from collections import OrderedDict

        config = RunConfig(scenario_params=OrderedDict(a=1))
        assert type(config.scenario_params) is dict

    def test_empty_key_rejected(self):
        with pytest.raises(ModelError, match="non-empty strings"):
            RunConfig(scenario_params={"": 1})

    def test_non_scalar_value_rejected(self):
        with pytest.raises(ModelError, match="JSON-native scalar"):
            RunConfig(scenario_params={"grid": [1, 2, 3]})
