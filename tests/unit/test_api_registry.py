"""Scenario registry: parameter schemas, resolution and payload canonicalization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import RunConfig, RunReport
from repro.api.registry import (
    ScenarioOutcome,
    ScenarioParam,
    ScenarioSpec,
    canonicalize_payload,
    get_scenario,
    register_scenario,
)
from repro.core.exceptions import ModelError


class TestScenarioParam:
    def test_int_coercion_from_cli_string(self):
        param = ScenarioParam("n", "int", default=5)
        assert param.coerce("12") == 12
        assert isinstance(param.coerce("12"), int)

    def test_int_rejects_fractional_floats(self):
        param = ScenarioParam("n", "int")
        with pytest.raises(ModelError, match="expects int"):
            param.coerce(2.5)
        assert param.coerce(2.0) == 2

    def test_float_coercion(self):
        param = ScenarioParam("p", "float", default=0.5)
        assert param.coerce("0.25") == 0.25

    def test_bool_accepts_cli_spellings(self):
        param = ScenarioParam("flag", "bool", default=False)
        for truthy in ("true", "1", "Yes"):
            assert param.coerce(truthy) is True
        for falsy in ("false", "0", "no"):
            assert param.coerce(falsy) is False
        with pytest.raises(ModelError, match="expects bool"):
            param.coerce("maybe")

    def test_inclusive_bounds(self):
        param = ScenarioParam("n", "int", default=5, minimum=1, maximum=10)
        assert param.coerce(1) == 1
        assert param.coerce(10) == 10
        with pytest.raises(ModelError, match=">= 1"):
            param.coerce(0)
        with pytest.raises(ModelError, match="<= 10"):
            param.coerce(11)

    def test_default_is_validated_against_the_schema(self):
        with pytest.raises(ModelError, match=">= 1"):
            ScenarioParam("n", "int", default=0, minimum=1)

    def test_unknown_type_rejected(self):
        with pytest.raises(ModelError, match="Unknown ScenarioParam type"):
            ScenarioParam("n", "complex")

    def test_describe_renders_type_default_and_bounds(self):
        param = ScenarioParam("n_processes", "int", default=20, minimum=1)
        assert param.describe() == "n_processes:int=20 [1..]"
        assert ScenarioParam("layers", "int", minimum=1).describe() == "layers:int [1..]"


class TestResolveParams:
    def _spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            scenario_id="family",
            title="t",
            params=(
                ScenarioParam("n", "int", default=20, minimum=1),
                ScenarioParam("layers", "int", minimum=1),
            ),
            runner=lambda session, params: ScenarioOutcome(payload={}),
        )

    def test_defaults_apply_without_overrides(self):
        assert self._spec().resolve_params() == {"n": 20, "layers": None}

    def test_explicit_override_beats_default(self):
        resolved = self._spec().resolve_params({"n": "50"})
        assert resolved == {"n": 50, "layers": None}

    def test_unknown_name_fails_with_schema(self):
        with pytest.raises(ModelError, match=r"n:int=20 \[1\.\.\]"):
            self._spec().resolve_params({"bogus": 1})

    def test_parameterless_scenario_rejects_any_override(self):
        spec = ScenarioSpec(
            scenario_id="fixed",
            title="t",
            runner=lambda session, params: ScenarioOutcome(payload={}),
        )
        with pytest.raises(ModelError, match="accepts no parameters"):
            spec.resolve_params({"n": 1})

    def test_registered_family_schema_is_visible(self):
        spec = get_scenario("synthetic-random")
        assert "n_processes:int=20" in spec.schema()

    def test_duplicate_param_names_rejected_at_registration(self):
        with pytest.raises(ModelError, match="duplicate parameter names"):
            register_scenario(
                "_dup-params",
                title="t",
                params=(ScenarioParam("n", "int"), ScenarioParam("n", "int")),
            )


class TestCanonicalizePayload:
    def test_numpy_scalars_become_python_scalars(self):
        payload = canonicalize_payload(
            {"count": np.int64(3), "rate": np.float64(0.5), "flag": np.bool_(True)}
        )
        assert payload == {"count": 3, "rate": 0.5, "flag": True}
        assert type(payload["count"]) is int
        assert type(payload["rate"]) is float
        assert type(payload["flag"]) is bool

    def test_arrays_and_tuples_become_lists(self):
        payload = canonicalize_payload({"xs": np.arange(3), "pair": (1, 2)})
        assert payload == {"xs": [0, 1, 2], "pair": [1, 2]}

    def test_numeric_keys_become_strings(self):
        assert canonicalize_payload({1: "a", 2.5: "b"}) == {"1": "a", "2.5": "b"}

    def test_outcome_canonicalizes_on_construction(self):
        outcome = ScenarioOutcome(payload={"n": np.int32(7), "nested": {"x": (1,)}})
        assert outcome.payload == {"n": 7, "nested": {"x": [1]}}
        json.dumps(outcome.payload)  # must not raise

    def test_report_with_numpy_payload_round_trips(self):
        # Regression: RunReport.to_json used to raise TypeError on numpy
        # scalars reaching the results payload.
        outcome = ScenarioOutcome(
            payload={"acceptance": {np.float64(5.0): np.float64(100.0)}}
        )
        report = RunReport(
            scenario="probe", config=RunConfig(), results=outcome.payload
        )
        round_tripped = RunReport.from_json(report.to_json())
        assert round_tripped.results == {"acceptance": {"5.0": 100.0}}
