"""Session: scoped kernel ownership, store/engine construction, reports."""

from __future__ import annotations

import pytest

from repro.api import RunConfig, RunReport, Session
from repro.api.registry import ScenarioOutcome, register_scenario
from repro.core.exceptions import ModelError
from repro.engine.store import DesignPointStore
from repro.experiments.motivational import fig1_application, fig1_profile
from repro.kernels import (
    KERNEL_ENV_VAR,
    SCHED_KERNEL_ENV_VAR,
    active_kernel,
    active_sched_kernel,
)


@pytest.fixture(autouse=True)
def _no_env(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    monkeypatch.delenv(SCHED_KERNEL_ENV_VAR, raising=False)


class TestKernelScope:
    def test_with_block_pins_and_restores_selection(self):
        config = RunConfig(sfp_kernel="reference", sched_kernel="reference")
        with Session(config):
            assert active_kernel().name == "reference"
            assert active_sched_kernel().name == "reference"
        assert active_kernel().name == "array"
        assert active_sched_kernel().name == "flat"

    def test_restores_selection_when_body_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            with Session(RunConfig(sfp_kernel="reference")):
                raise RuntimeError("boom")
        assert active_kernel().name == "array"

    def test_session_is_not_reentrant(self):
        session = Session()
        with session:
            with pytest.raises(RuntimeError, match="not re-entrant"):
                session.__enter__()

    def test_run_scopes_kernels_without_a_with_block(self):
        observed = {}

        @register_scenario("_probe-kernels", title="test probe")
        def _probe(session, params):
            observed["sfp"] = active_kernel().name
            observed["sched"] = active_sched_kernel().name
            return ScenarioOutcome(payload={})

        try:
            report = Session(
                RunConfig(sfp_kernel="reference", sched_kernel="reference")
            ).run("_probe-kernels")
        finally:
            # Keep the global registry clean for other tests (and reruns).
            from repro.api.registry import _SCENARIOS

            _SCENARIOS.pop("_probe-kernels", None)
        assert observed == {"sfp": "reference", "sched": "reference"}
        assert report.kernels == {"sfp": "reference", "sched": "reference"}
        # Standalone run() restored the ambient selection afterwards.
        assert active_kernel().name == "array"
        assert active_sched_kernel().name == "flat"


class TestOwnedResources:
    def test_no_store_without_cache_dir(self):
        assert Session().store is None

    def test_store_is_lazily_created_and_memoized(self, tmp_path):
        session = Session(RunConfig(cache_dir=tmp_path / "store"))
        store = session.store
        assert isinstance(store, DesignPointStore)
        assert session.store is store

    def test_engine_binds_context_and_warms_from_store(self, tmp_path):
        application, profile = fig1_application(), fig1_profile()
        session = Session(RunConfig(cache_dir=tmp_path / "store"))
        engine = session.engine(application, profile)
        assert engine.matches(application, profile)
        # Persist a warm engine; a second session must reload its entries.
        engine.exceedance.memoize(("probe", 1, 12), lambda: 0.5)
        session.persist(engine)
        second = Session(RunConfig(cache_dir=tmp_path / "store"))
        warmed = second.engine(application, profile)
        assert warmed.exceedance.memoize(("probe", 1, 12), lambda: 0.0) == 0.5

    def test_experiment_is_shared_within_a_session(self):
        session = Session(RunConfig(preset="smoke"))
        assert session.experiment() is session.experiment()
        assert session.experiment().preset.n_applications == 2

    def test_cache_report_is_zeroed_before_any_experiment(self):
        report = Session().cache_report()
        assert report["hits"] == 0
        assert report["points_computed"] == 0


class TestRun:
    def test_unknown_scenario_fails_with_known_list(self):
        with pytest.raises(ModelError, match="Unknown scenario"):
            Session().run("fig9z")

    def test_one_shot_run_writes_the_report_to_output(self, tmp_path):
        from repro import api

        output = tmp_path / "report.json"
        config = RunConfig(preset="smoke", output=output)
        report = api.run("fig6a", config)
        assert output.exists()
        assert RunReport.from_json(output.read_text(encoding="utf-8")) == report

    def test_session_run_does_not_write_output(self, tmp_path):
        # Multi-scenario sessions must not silently overwrite reports; only
        # the one-shot api.run persists to config.output.
        output = tmp_path / "report.json"
        Session(RunConfig(preset="smoke", output=output)).run("fig6a")
        assert not output.exists()
