"""Unit tests for the application model (processes, messages, task graphs)."""

from __future__ import annotations

import pytest

from repro.core.application import (
    ONE_HOUR_MS,
    Application,
    Message,
    Process,
    TaskGraph,
    build_chain_application,
)
from repro.core.exceptions import ModelError


class TestProcess:
    def test_basic_construction(self):
        process = Process("P1", nominal_wcet=12.5)
        assert process.name == "P1"
        assert process.nominal_wcet == 12.5
        assert process.criticality == 1.0

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Process("")

    def test_non_positive_wcet_rejected(self):
        with pytest.raises(ValueError):
            Process("P1", nominal_wcet=0.0)

    def test_non_positive_criticality_rejected(self):
        with pytest.raises(ValueError):
            Process("P1", criticality=0.0)

    def test_is_frozen(self):
        process = Process("P1")
        with pytest.raises(AttributeError):
            process.name = "P2"  # type: ignore[misc]


class TestMessage:
    def test_basic_construction(self):
        message = Message("m1", "P1", "P2", transmission_time=3.0)
        assert message.source == "P1"
        assert message.destination == "P2"
        assert message.transmission_time == 3.0

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            Message("m1", "P1", "P1")

    def test_negative_transmission_time_rejected(self):
        with pytest.raises(ValueError):
            Message("m1", "P1", "P2", transmission_time=-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Message("", "P1", "P2")


class TestTaskGraph:
    def _chain(self) -> TaskGraph:
        graph = TaskGraph("G")
        graph.add_process(Process("A", nominal_wcet=5.0))
        graph.add_process(Process("B", nominal_wcet=10.0))
        graph.add_process(Process("C", nominal_wcet=15.0))
        graph.add_message(Message("m1", "A", "B", transmission_time=1.0))
        graph.add_message(Message("m2", "B", "C", transmission_time=2.0))
        return graph

    def test_duplicate_process_rejected(self):
        graph = TaskGraph("G")
        graph.add_process(Process("A"))
        with pytest.raises(ModelError):
            graph.add_process(Process("A"))

    def test_message_with_unknown_endpoint_rejected(self):
        graph = TaskGraph("G")
        graph.add_process(Process("A"))
        with pytest.raises(ModelError):
            graph.add_message(Message("m1", "A", "missing"))

    def test_duplicate_edge_rejected(self):
        graph = self._chain()
        with pytest.raises(ModelError):
            graph.add_message(Message("dup", "A", "B"))

    def test_cycle_rejected_and_rolled_back(self):
        graph = self._chain()
        with pytest.raises(ModelError):
            graph.add_message(Message("back", "C", "A"))
        # The rejected edge must not linger in the graph.
        assert graph.message_between("C", "A") is None
        assert len(graph.messages) == 2

    def test_sources_and_sinks(self):
        graph = self._chain()
        assert graph.sources() == ["A"]
        assert graph.sinks() == ["C"]

    def test_topological_order_respects_dependencies(self):
        graph = self._chain()
        order = graph.topological_order()
        assert order.index("A") < order.index("B") < order.index("C")

    def test_predecessors_and_successors(self):
        graph = self._chain()
        assert graph.predecessors("B") == ["A"]
        assert graph.successors("B") == ["C"]

    def test_incoming_and_outgoing_messages(self):
        graph = self._chain()
        assert [m.name for m in graph.incoming_messages("C")] == ["m2"]
        assert [m.name for m in graph.outgoing_messages("A")] == ["m1"]

    def test_critical_path_with_messages(self):
        graph = self._chain()
        length = graph.critical_path_length(
            lambda name: graph.process(name).nominal_wcet, include_messages=True
        )
        assert length == pytest.approx(5 + 1 + 10 + 2 + 15)

    def test_critical_path_without_messages(self):
        graph = self._chain()
        length = graph.critical_path_length(
            lambda name: graph.process(name).nominal_wcet, include_messages=False
        )
        assert length == pytest.approx(30.0)

    def test_downward_rank_of_source_equals_critical_path(self):
        graph = self._chain()
        ranks = graph.downward_rank(
            lambda name: graph.process(name).nominal_wcet, include_messages=True
        )
        assert ranks["A"] == pytest.approx(33.0)
        assert ranks["C"] == pytest.approx(15.0)

    def test_unknown_process_lookup_raises(self):
        graph = self._chain()
        with pytest.raises(ModelError):
            graph.process("missing")

    def test_len_and_contains(self):
        graph = self._chain()
        assert len(graph) == 3
        assert "A" in graph
        assert "missing" not in graph

    def test_to_networkx_returns_copy(self):
        graph = self._chain()
        nx_graph = graph.to_networkx()
        nx_graph.remove_node("A")
        assert "A" in graph


class TestApplication:
    def test_gamma_and_iterations(self):
        application = Application("app", deadline=100.0, reliability_goal=1 - 1e-5)
        assert application.gamma == pytest.approx(1e-5)
        assert application.iterations_per_time_unit == pytest.approx(ONE_HOUR_MS / 100.0)

    def test_period_defaults_to_deadline(self):
        application = Application("app", deadline=250.0, reliability_goal=0.999)
        assert application.period == 250.0

    def test_duplicate_graph_rejected(self):
        application = Application("app", deadline=10.0, reliability_goal=0.99)
        application.new_graph("G")
        with pytest.raises(ModelError):
            application.new_graph("G")

    def test_duplicate_process_across_graphs_rejected(self):
        application = Application("app", deadline=10.0, reliability_goal=0.99)
        first = application.new_graph("G1")
        first.add_process(Process("P1"))
        second = TaskGraph("G2")
        second.add_process(Process("P1"))
        with pytest.raises(ModelError):
            application.add_graph(second)

    def test_recovery_overhead_override(self):
        application = Application(
            "app", deadline=10.0, reliability_goal=0.99, recovery_overhead=2.0
        )
        graph = application.new_graph("G")
        graph.add_process(Process("P1"))
        graph.add_process(Process("P2"))
        application.set_recovery_overhead("P1", 0.5)
        assert application.recovery_overhead_of("P1") == 0.5
        assert application.recovery_overhead_of("P2") == 2.0

    def test_recovery_overhead_for_unknown_process_rejected(self):
        application = Application("app", deadline=10.0, reliability_goal=0.99)
        application.new_graph("G").add_process(Process("P1"))
        with pytest.raises(ModelError):
            application.set_recovery_overhead("missing", 1.0)

    def test_process_lookup_across_graphs(self):
        application = Application("app", deadline=10.0, reliability_goal=0.99)
        application.new_graph("G1").add_process(Process("P1"))
        application.new_graph("G2").add_process(Process("P2"))
        assert application.process("P2").name == "P2"
        assert application.graph_of("P1").name == "G1"
        assert application.number_of_processes() == 2

    def test_unknown_process_raises(self):
        application = Application("app", deadline=10.0, reliability_goal=0.99)
        application.new_graph("G")
        with pytest.raises(ModelError):
            application.process("nope")

    def test_validate_rejects_empty_application(self):
        application = Application("app", deadline=10.0, reliability_goal=0.99)
        with pytest.raises(ModelError):
            application.validate()

    def test_validate_accepts_fig1(self, fig1_app):
        fig1_app.validate()

    def test_invalid_reliability_goal_rejected(self):
        with pytest.raises(ValueError):
            Application("app", deadline=10.0, reliability_goal=1.5)

    def test_messages_listing(self, fig1_app):
        names = {message.name for message in fig1_app.messages()}
        assert names == {"m1", "m2", "m3", "m4"}


class TestBuildChainApplication:
    def test_chain_structure(self):
        application = build_chain_application(
            "chain", [5.0, 6.0, 7.0], deadline=100.0, reliability_goal=0.999,
            recovery_overhead=1.0, message_time=0.5,
        )
        graph = application.graphs[0]
        assert len(graph) == 3
        assert graph.sources() == ["P1"]
        assert graph.sinks() == ["P3"]
        assert graph.message_between("P1", "P2") is not None
        assert graph.message_between("P2", "P3") is not None

    def test_single_process_chain_has_no_messages(self):
        application = build_chain_application(
            "chain", [5.0], deadline=10.0, reliability_goal=0.99, recovery_overhead=0.0
        )
        assert application.messages() == []


class TestStructureToken:
    """The structural token guards memoized derived structure downstream."""

    def _chain(self) -> TaskGraph:
        graph = TaskGraph("G")
        graph.add_process(Process("A", nominal_wcet=5.0))
        graph.add_process(Process("B", nominal_wcet=10.0))
        graph.add_process(Process("C", nominal_wcet=15.0))
        graph.add_message(Message("m1", "A", "B", transmission_time=1.0))
        graph.add_message(Message("m2", "B", "C", transmission_time=2.0))
        return graph

    def test_token_stable_without_mutation(self):
        graph = self._chain()
        assert graph.structure_token() == graph.structure_token()

    def test_count_preserving_rewire_changes_token(self):
        graph = self._chain()
        before = graph.structure_token()
        graph.remove_message("B", "C")
        graph.add_message(Message("m2", "A", "C", transmission_time=2.0))
        assert len(graph.messages) == 2  # counts unchanged...
        assert graph.structure_token() != before  # ...token not

    def test_renamed_message_changes_token(self):
        graph = self._chain()
        before = graph.structure_token()
        graph.remove_message("A", "B")
        graph.add_message(Message("m1-renamed", "A", "B", transmission_time=1.0))
        assert graph.structure_token() != before

    def test_changed_transmission_time_changes_token(self):
        graph = self._chain()
        before = graph.structure_token()
        graph.remove_message("A", "B")
        graph.add_message(Message("m1", "A", "B", transmission_time=3.0))
        assert graph.structure_token() != before

    def test_remove_message_unknown_edge_raises(self):
        graph = self._chain()
        with pytest.raises(ModelError, match="No message from"):
            graph.remove_message("A", "C")

    def test_removed_edge_restores_schedulability_queries(self):
        graph = self._chain()
        removed = graph.remove_message("B", "C")
        assert removed.name == "m2"
        assert graph.incoming_messages("C") == []
        assert "C" in graph.sources() or graph.predecessors("C") == []

    def test_application_token_covers_all_graphs(self):
        application = Application(
            "app", deadline=100.0, reliability_goal=0.99, recovery_overhead=1.0
        )
        first = application.new_graph("G1")
        first.add_process(Process("A", nominal_wcet=5.0))
        before = application.structure_token()
        second = application.new_graph("G2")
        second.add_process(Process("B", nominal_wcet=5.0))
        mid = application.structure_token()
        assert mid != before
        second.add_process(Process("C", nominal_wcet=5.0))
        second.add_message(Message("m", "B", "C", transmission_time=1.0))
        assert application.structure_token() != mid
