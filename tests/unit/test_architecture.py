"""Unit tests for the platform model (h-versions, node types, architectures)."""

from __future__ import annotations

import pytest

from repro.core.architecture import (
    Architecture,
    HVersion,
    Node,
    NodeType,
    doubling_cost_node_type,
    linear_cost_node_type,
)
from repro.core.exceptions import ModelError


class TestHVersion:
    def test_valid(self):
        version = HVersion(level=2, cost=32.0)
        assert version.level == 2
        assert version.cost == 32.0

    def test_level_below_one_rejected(self):
        with pytest.raises(ModelError):
            HVersion(level=0, cost=1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            HVersion(level=1, cost=-1.0)


class TestNodeType:
    def test_levels_must_start_at_one_and_be_consecutive(self):
        with pytest.raises(ModelError):
            NodeType("N", [HVersion(2, 1.0), HVersion(3, 2.0)])
        with pytest.raises(ModelError):
            NodeType("N", [HVersion(1, 1.0), HVersion(3, 2.0)])

    def test_empty_versions_rejected(self):
        with pytest.raises(ModelError):
            NodeType("N", [])

    def test_cost_lookup(self, fig1_nodes):
        n1, n2 = fig1_nodes
        assert n1.cost(1) == 16.0
        assert n1.cost(3) == 64.0
        assert n2.cost(2) == 40.0

    def test_unknown_level_rejected(self, fig1_nodes):
        n1, _ = fig1_nodes
        with pytest.raises(ModelError):
            n1.cost(4)

    def test_min_max_properties(self, fig1_nodes):
        n1, _ = fig1_nodes
        assert n1.min_hardening == 1
        assert n1.max_hardening == 3
        assert n1.min_cost == 16.0
        assert n1.max_cost == 64.0
        assert n1.hardening_levels == [1, 2, 3]

    def test_invalid_speed_factor_rejected(self):
        with pytest.raises(ValueError):
            NodeType("N", [HVersion(1, 1.0)], speed_factor=0.0)


class TestCostLadders:
    def test_linear_cost_ladder(self):
        node_type = linear_cost_node_type("N", base_cost=3.0, levels=5)
        assert [node_type.cost(level) for level in range(1, 6)] == [3.0, 6.0, 9.0, 12.0, 15.0]

    def test_doubling_cost_ladder_matches_fig1(self):
        node_type = doubling_cost_node_type("N1", base_cost=16.0, levels=3)
        assert [node_type.cost(level) for level in range(1, 4)] == [16.0, 32.0, 64.0]

    def test_invalid_level_count_rejected(self):
        with pytest.raises(ModelError):
            linear_cost_node_type("N", base_cost=1.0, levels=0)

    def test_invalid_base_cost_rejected(self):
        with pytest.raises(ValueError):
            doubling_cost_node_type("N", base_cost=0.0, levels=2)


class TestNode:
    def test_defaults_to_min_hardening(self, fig1_nodes):
        n1, _ = fig1_nodes
        node = Node("N1", n1)
        assert node.hardening == 1
        assert node.cost == 16.0

    def test_explicit_hardening(self, fig1_nodes):
        n1, _ = fig1_nodes
        node = Node("N1", n1, hardening=3)
        assert node.hardening == 3
        assert node.cost == 64.0

    def test_invalid_hardening_rejected(self, fig1_nodes):
        n1, _ = fig1_nodes
        with pytest.raises(ModelError):
            Node("N1", n1, hardening=5)

    def test_harden_and_soften(self, fig1_nodes):
        n1, _ = fig1_nodes
        node = Node("N1", n1)
        node.harden()
        assert node.hardening == 2
        node.soften()
        assert node.hardening == 1

    def test_harden_beyond_max_rejected(self, fig1_nodes):
        n1, _ = fig1_nodes
        node = Node("N1", n1, hardening=3)
        assert not node.can_harden()
        with pytest.raises(ModelError):
            node.harden()

    def test_soften_below_min_rejected(self, fig1_nodes):
        n1, _ = fig1_nodes
        node = Node("N1", n1)
        assert not node.can_soften()
        with pytest.raises(ModelError):
            node.soften()

    def test_copy_is_independent(self, fig1_nodes):
        n1, _ = fig1_nodes
        node = Node("N1", n1, hardening=2)
        clone = node.copy()
        clone.harden()
        assert node.hardening == 2
        assert clone.hardening == 3


class TestArchitecture:
    def test_requires_at_least_one_node(self):
        with pytest.raises(ModelError):
            Architecture([])

    def test_duplicate_node_names_rejected(self, fig1_nodes):
        n1, _ = fig1_nodes
        with pytest.raises(ModelError):
            Architecture([Node("N1", n1), Node("N1", n1)])

    def test_cost_sums_nodes(self, fig4a_architecture):
        assert fig4a_architecture.cost == 72.0

    def test_minimum_cost_uses_cheapest_versions(self, fig4a_architecture):
        assert fig4a_architecture.minimum_cost == 36.0

    def test_hardening_vector_roundtrip(self, fig4a_architecture):
        vector = fig4a_architecture.hardening_vector()
        assert vector == {"N1": 2, "N2": 2}
        fig4a_architecture.set_min_hardening()
        assert fig4a_architecture.hardening_vector() == {"N1": 1, "N2": 1}
        fig4a_architecture.apply_hardening_vector(vector)
        assert fig4a_architecture.hardening_vector() == vector

    def test_apply_hardening_vector_with_unknown_node_rejected(self, fig4a_architecture):
        with pytest.raises(ModelError):
            fig4a_architecture.apply_hardening_vector({"missing": 1})

    def test_set_max_hardening(self, fig4a_architecture):
        fig4a_architecture.set_max_hardening()
        assert fig4a_architecture.hardening_vector() == {"N1": 3, "N2": 3}
        assert fig4a_architecture.cost == 64.0 + 80.0

    def test_copy_is_deep_for_nodes(self, fig4a_architecture):
        clone = fig4a_architecture.copy()
        clone.set_max_hardening()
        assert fig4a_architecture.hardening_vector() == {"N1": 2, "N2": 2}

    def test_node_lookup(self, fig4a_architecture):
        assert fig4a_architecture.node("N1").node_type.name == "N1"
        assert fig4a_architecture.has_node("N2")
        assert "N2" in fig4a_architecture
        with pytest.raises(ModelError):
            fig4a_architecture.node("N9")

    def test_iteration_and_len(self, fig4a_architecture):
        assert len(fig4a_architecture) == 2
        assert [node.name for node in fig4a_architecture] == ["N1", "N2"]

    def test_from_node_types(self, fig1_nodes):
        architecture = Architecture.from_node_types(list(fig1_nodes))
        assert architecture.node_names == ["N1", "N2"]
        assert architecture.hardening_vector() == {"N1": 1, "N2": 1}
