"""Unit tests for the MIN / MAX / OPT strategy factories."""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    all_strategies,
    max_hardening_strategy,
    min_hardening_strategy,
    optimized_strategy,
)
from repro.core.mapping import MappingAlgorithm
from repro.core.redundancy import FixedHardeningRedundancyOpt, RedundancyOpt
from repro.experiments.motivational import fig1_application, fig1_node_types, fig1_profile


class TestStrategyFactories:
    def test_strategy_names(self):
        node_types = list(fig1_node_types())
        assert optimized_strategy(node_types).strategy_name == "OPT"
        assert min_hardening_strategy(node_types).strategy_name == "MIN"
        assert max_hardening_strategy(node_types).strategy_name == "MAX"

    def test_all_strategies_returns_three(self):
        strategies = all_strategies(list(fig1_node_types()))
        assert set(strategies) == {"MIN", "MAX", "OPT"}

    def test_redundancy_optimizer_types(self):
        node_types = list(fig1_node_types())
        opt = optimized_strategy(node_types)
        minimum = min_hardening_strategy(node_types)
        maximum = max_hardening_strategy(node_types)
        assert isinstance(opt.mapping_algorithm.redundancy_optimizer, RedundancyOpt)
        assert isinstance(
            minimum.mapping_algorithm.redundancy_optimizer, FixedHardeningRedundancyOpt
        )
        assert minimum.mapping_algorithm.redundancy_optimizer.policy == "min"
        assert maximum.mapping_algorithm.redundancy_optimizer.policy == "max"

    def test_mapping_tuning_is_propagated(self):
        template = MappingAlgorithm(
            max_iterations=2, stop_after_no_improvement=1, tabu_tenure=5, max_candidates=2
        )
        strategy = min_hardening_strategy(list(fig1_node_types()), template)
        algorithm = strategy.mapping_algorithm
        assert algorithm.max_iterations == 2
        assert algorithm.stop_after_no_improvement == 1
        assert algorithm.tabu_tenure == 5
        assert algorithm.max_candidates == 2


class TestStrategiesOnFig1:
    """At the Fig. 1 error rates, MIN fails while MAX and OPT succeed."""

    @pytest.fixture
    def problem(self):
        algorithm = MappingAlgorithm(max_iterations=4, stop_after_no_improvement=2)
        return fig1_application(), fig1_profile(), algorithm

    def test_min_strategy_fails_on_fig1(self, problem):
        application, profile, algorithm = problem
        result = min_hardening_strategy(list(fig1_node_types()), algorithm).explore(
            application, profile
        )
        assert not result.feasible

    def test_max_strategy_succeeds_on_fig1(self, problem):
        application, profile, algorithm = problem
        result = max_hardening_strategy(list(fig1_node_types()), algorithm).explore(
            application, profile
        )
        assert result.feasible
        assert set(result.hardening.values()) == {3}
        # The cheapest max-hardened feasible architecture is the mono N2^3.
        assert result.cost == pytest.approx(80.0)

    def test_opt_strategy_beats_max_on_cost(self, problem):
        application, profile, algorithm = problem
        opt = optimized_strategy(list(fig1_node_types()), algorithm).explore(
            application, profile
        )
        maximum = max_hardening_strategy(list(fig1_node_types()), algorithm).explore(
            application, profile
        )
        assert opt.feasible and maximum.feasible
        assert opt.cost < maximum.cost
