"""Unit tests for the shared-bus communication models."""

from __future__ import annotations

import pytest

from repro.comm.bus import SimpleBus, TDMABus
from repro.core.exceptions import ModelError, SchedulingError


class TestSimpleBus:
    def test_first_message_starts_at_earliest(self):
        bus = SimpleBus()
        reservation = bus.reserve("m1", "N1", earliest_start=5.0, duration=3.0)
        assert reservation.start == 5.0
        assert reservation.finish == 8.0

    def test_messages_are_serialized(self):
        bus = SimpleBus()
        bus.reserve("m1", "N1", earliest_start=0.0, duration=10.0)
        second = bus.reserve("m2", "N2", earliest_start=2.0, duration=5.0)
        assert second.start == 10.0

    def test_message_can_fill_gap_before_existing_reservation(self):
        bus = SimpleBus()
        bus.reserve("m1", "N1", earliest_start=20.0, duration=10.0)
        second = bus.reserve("m2", "N2", earliest_start=0.0, duration=5.0)
        assert second.start == 0.0
        assert second.finish == 5.0

    def test_message_too_large_for_gap_is_pushed_after(self):
        bus = SimpleBus()
        bus.reserve("m1", "N1", earliest_start=4.0, duration=10.0)
        second = bus.reserve("m2", "N2", earliest_start=0.0, duration=5.0)
        assert second.start == 14.0

    def test_zero_duration_message(self):
        bus = SimpleBus()
        reservation = bus.reserve("m1", "N1", earliest_start=1.0, duration=0.0)
        assert reservation.start == reservation.finish == 1.0

    def test_reset_clears_reservations(self):
        bus = SimpleBus()
        bus.reserve("m1", "N1", 0.0, 10.0)
        bus.reset()
        assert bus.reservations == []
        reservation = bus.reserve("m2", "N1", 0.0, 5.0)
        assert reservation.start == 0.0

    def test_negative_arguments_rejected(self):
        bus = SimpleBus()
        with pytest.raises(ValueError):
            bus.reserve("m1", "N1", -1.0, 5.0)
        with pytest.raises(ValueError):
            bus.reserve("m1", "N1", 0.0, -5.0)

    def test_reservations_sorted_by_start(self):
        bus = SimpleBus()
        bus.reserve("m1", "N1", 50.0, 5.0)
        bus.reserve("m2", "N1", 0.0, 5.0)
        starts = [reservation.start for reservation in bus.reservations]
        assert starts == sorted(starts)


class TestTDMABus:
    def test_slot_order_validation(self):
        with pytest.raises(ModelError):
            TDMABus([], slot_length=10.0)
        with pytest.raises(ModelError):
            TDMABus(["N1", "N1"], slot_length=10.0)
        with pytest.raises(ValueError):
            TDMABus(["N1"], slot_length=0.0)

    def test_round_length(self):
        bus = TDMABus(["N1", "N2", "N3"], slot_length=10.0)
        assert bus.round_length == 30.0
        assert bus.slot_index("N2") == 1

    def test_unknown_sender_rejected(self):
        bus = TDMABus(["N1"], slot_length=10.0)
        with pytest.raises(SchedulingError):
            bus.reserve("m1", "N9", 0.0, 5.0)

    def test_message_waits_for_its_senders_slot(self):
        bus = TDMABus(["N1", "N2"], slot_length=10.0)
        # N2 owns [10, 20), [30, 40), ...; data ready at t=0 must wait.
        reservation = bus.reserve("m1", "N2", earliest_start=0.0, duration=5.0)
        assert reservation.start == 10.0

    def test_message_in_own_slot_starts_immediately(self):
        bus = TDMABus(["N1", "N2"], slot_length=10.0)
        reservation = bus.reserve("m1", "N1", earliest_start=2.0, duration=5.0)
        assert reservation.start == 2.0

    def test_message_that_does_not_fit_slot_rejected(self):
        bus = TDMABus(["N1", "N2"], slot_length=10.0)
        with pytest.raises(SchedulingError):
            bus.reserve("m1", "N1", 0.0, 11.0)

    def test_message_missing_slot_end_moves_to_next_round(self):
        bus = TDMABus(["N1", "N2"], slot_length=10.0)
        # Ready at t=7, needs 5 ms, N1's slot ends at 10 -> next N1 slot at 20.
        reservation = bus.reserve("m1", "N1", earliest_start=7.0, duration=5.0)
        assert reservation.start == 20.0

    def test_two_messages_share_one_slot_without_overlap(self):
        bus = TDMABus(["N1", "N2"], slot_length=10.0)
        first = bus.reserve("m1", "N1", 0.0, 4.0)
        second = bus.reserve("m2", "N1", 0.0, 4.0)
        assert first.finish <= second.start
        assert second.finish <= 10.0

    def test_conflicting_message_pushed_to_later_round(self):
        bus = TDMABus(["N1", "N2"], slot_length=10.0)
        bus.reserve("m1", "N1", 0.0, 8.0)
        second = bus.reserve("m2", "N1", 0.0, 8.0)
        assert second.start == 20.0


class TestReservationOrderInvariant:
    """`_earliest_gap` scans in start order and stops at the first fitting gap,
    so `reserve` must keep the reservation list sorted by start time.

    Regression: this used to be maintained with a full `list.sort` after every
    append (O(n^2 log n) per scheduling pass); it is now a `bisect.insort`.
    The observable contract is unchanged and pinned here.
    """

    def test_gap_filling_keeps_list_sorted(self):
        bus = SimpleBus()
        # Grant windows out of start order: [40,50), [0,5), [20,28), [5,10).
        bus.reserve("m1", "N1", 40.0, 10.0)
        bus.reserve("m2", "N2", 0.0, 5.0)
        bus.reserve("m3", "N1", 20.0, 8.0)
        bus.reserve("m4", "N2", 2.0, 5.0)
        starts = [r.start for r in bus.reservations]
        assert starts == sorted(starts)
        assert [r.message for r in bus.reservations] == ["m2", "m4", "m3", "m1"]

    def test_scan_relies_on_sorted_order(self):
        bus = SimpleBus()
        bus.reserve("m1", "N1", 40.0, 10.0)
        bus.reserve("m2", "N2", 0.0, 5.0)
        # A 15 ms message ready at t=0 must skip the [0,5) hole (too small is
        # false here: 5..20 fits) — the early-exit scan only sees this gap if
        # the list is ordered by start.
        third = bus.reserve("m3", "N1", 0.0, 15.0)
        assert third.start == 5.0
        assert third.finish == 20.0

    def test_zero_duration_ties_keep_insertion_order(self):
        # insort_right after equal starts == append-then-stable-sort.
        bus = SimpleBus()
        bus.reserve("m1", "N1", 10.0, 0.0)
        bus.reserve("m2", "N2", 10.0, 0.0)
        bus.reserve("m3", "N1", 10.0, 0.0)
        assert [r.message for r in bus.reservations] == ["m1", "m2", "m3"]

    def test_tdma_out_of_order_grants_stay_sorted(self):
        bus = TDMABus(["N1", "N2"], slot_length=10.0)
        # N2's first slot is [10,20); a later N1 message lands earlier at [0,?).
        first = bus.reserve("m1", "N2", 0.0, 5.0)
        second = bus.reserve("m2", "N1", 0.0, 5.0)
        assert first.start == 10.0
        assert second.start == 0.0
        assert [r.message for r in bus.reservations] == ["m2", "m1"]


class TestAdoptedReservations:
    """Windows adopted from a scheduler kernel must be indistinguishable from
    an equivalent sequence of `reserve` calls."""

    def test_adopted_windows_materialize_as_reservations(self):
        bus = SimpleBus()
        bus.adopt_reservations(
            [("m1", "N1", 0.0, 5.0), ("m2", "N2", 7.0, 9.0)]
        )
        reservations = bus.reservations
        assert [(r.message, r.sender_node, r.start, r.finish) for r in reservations] == [
            ("m1", "N1", 0.0, 5.0),
            ("m2", "N2", 7.0, 9.0),
        ]

    def test_reserve_after_adopt_sees_adopted_windows(self):
        bus = SimpleBus()
        bus.adopt_reservations(
            [("m1", "N1", 0.0, 5.0), ("m2", "N2", 7.0, 9.0)]
        )
        third = bus.reserve("m3", "N1", 0.0, 2.0)
        # Must skip the adopted [0,5) window and fit exactly before [7,9).
        assert third.start == 5.0 and third.finish == 7.0
        starts = [r.start for r in bus.reservations]
        assert starts == sorted(starts)

    def test_reset_discards_adopted_windows(self):
        bus = SimpleBus()
        bus.adopt_reservations([("m1", "N1", 0.0, 5.0)])
        bus.reset()
        assert bus.reservations == []
        assert bus.reserve("m2", "N1", 0.0, 5.0).start == 0.0

    def test_adopt_replaces_previous_reservations(self):
        bus = SimpleBus()
        bus.reserve("m1", "N1", 0.0, 5.0)
        bus.adopt_reservations([("m2", "N2", 1.0, 2.0)])
        assert [r.message for r in bus.reservations] == ["m2"]
