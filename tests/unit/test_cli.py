"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["motivational"]).command == "motivational"
        assert parser.parse_args(["synthetic", "--figure", "6c"]).figure == "6c"
        assert parser.parse_args(["cruise-control"]).command == "cruise-control"

    def test_unknown_figure_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["synthetic", "--figure", "7"])


class TestMotivationalCommand:
    def test_prints_fig3_and_fig4_tables(self, capsys):
        exit_code = main(["motivational"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 3" in captured
        assert "Fig. 4" in captured
        assert "Appendix A.2" in captured
        assert "680.0" in captured  # the unschedulable N1^1 alternative

    def test_writes_json_output(self, tmp_path, capsys):
        output = tmp_path / "motivational.json"
        exit_code = main(["motivational", "--output", str(output)])
        assert exit_code == 0
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert "fig3" in payload and "fig4" in payload and "appendix" in payload


class TestSyntheticCommand:
    def test_smoke_preset_runs_figure_6a(self, capsys):
        exit_code = main(["synthetic", "--figure", "6a", "--preset", "smoke"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 6a" in captured
        assert "MIN" in captured and "OPT" in captured


class TestCruiseControlCommand:
    def test_prints_study_table(self, capsys):
        exit_code = main(["cruise-control"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Cruise controller" in captured
        assert "OPT cost saving over MAX" in captured
