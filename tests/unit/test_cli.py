"""Unit tests for the command-line interface (generic driver + legacy shims)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

# The legacy subcommands under test are deprecated on purpose; emission of
# the warning itself is asserted in tests/unit/test_deprecation_shims.py.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["run", "fig6a"]).scenario == "fig6a"
        assert parser.parse_args(["run", "--list"]).list_scenarios
        assert parser.parse_args(["motivational"]).command == "motivational"
        assert parser.parse_args(["synthetic", "--figure", "6c"]).figure == "6c"
        assert parser.parse_args(["cruise-control"]).command == "cruise-control"

    def test_unknown_figure_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["synthetic", "--figure", "7"])

    def test_run_accepts_config_flags(self):
        arguments = build_parser().parse_args(
            ["run", "fig6a", "--preset", "smoke", "--jobs", "2",
             "--sfp-kernel", "reference", "--sched-kernel", "flat",
             "--seed", "9"]
        )
        assert arguments.preset == "smoke"
        assert arguments.jobs == 2
        assert arguments.sfp_kernel == "reference"
        assert arguments.sched_kernel == "flat"
        assert arguments.seed == 9

    def test_run_accepts_repeated_param_flags(self):
        arguments = build_parser().parse_args(
            ["run", "synthetic-random",
             "--param", "n_processes=100", "--param", "seed=7"]
        )
        assert arguments.params == [("n_processes", "100"), ("seed", "7")]

    def test_param_values_may_contain_equals_signs(self):
        arguments = build_parser().parse_args(
            ["run", "synthetic-random", "--param", "label=a=b"]
        )
        assert arguments.params == [("label", "a=b")]

    def test_malformed_param_rejected_at_parse_time(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "synthetic-random", "--param", "n_processes"])
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "synthetic-random", "--param", "=5"])


class TestRunCommand:
    def test_list_prints_all_scenarios(self, capsys):
        exit_code = main(["run", "--list"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        for scenario_id in ("fig6a", "fig6b", "fig6c", "fig6d",
                            "motivational", "cruise-control"):
            assert scenario_id in captured

    def test_list_shows_parameter_schemas(self, capsys):
        exit_code = main(["run", "--list"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "--param n_processes:int=20 [1..2000]" in captured
        assert "--param runs:int=20000" in captured

    def test_param_overrides_reach_the_scenario(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        exit_code = main(
            ["run", "synthetic-random", "--preset", "smoke", "--output", str(output),
             "--param", "n_processes=8", "--param", "seed=3"]
        )
        capsys.readouterr()
        assert exit_code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["params"]["n_processes"] == 8
        assert report["params"]["seed"] == 3
        assert report["params"]["n_node_types"] == 4  # declared default
        assert report["config"]["scenario_params"] == {"n_processes": "8", "seed": "3"}
        assert report["results"]["benchmark"]["n_processes"] == 8

    def test_invalid_param_value_is_a_clean_error(self, capsys):
        exit_code = main(
            ["run", "synthetic-random", "--param", "n_processes=zero"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "expects int" in captured.err

    def test_param_on_parameterless_scenario_is_a_clean_error(self, capsys):
        exit_code = main(["run", "fig6a", "--param", "n_processes=5"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "accepts no parameters" in captured.err

    def test_missing_scenario_is_an_error(self, capsys):
        exit_code = main(["run"])
        assert exit_code == 2
        assert "scenario id is required" in capsys.readouterr().err

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        exit_code = main(["run", "fig6x"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "Unknown scenario" in captured.err
        assert "fig6a" in captured.err  # the known list helps recovery

    def test_runs_a_scenario_and_prints_summary(self, capsys):
        exit_code = main(["run", "fig6a", "--preset", "smoke"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 6a" in captured
        assert "evaluation engine" in captured
        assert "scenario fig6a" in captured

    def test_writes_a_structured_report(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        exit_code = main(
            ["run", "fig6a", "--preset", "smoke", "--output", str(output)]
        )
        assert exit_code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["scenario"] == "fig6a"
        assert report["config"]["preset"] == "smoke"
        assert "acceptance" in report["results"]


class TestMotivationalCommand:
    def test_prints_fig3_and_fig4_tables(self, capsys):
        exit_code = main(["motivational"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 3" in captured
        assert "Fig. 4" in captured
        assert "Appendix A.2" in captured
        assert "680.0" in captured  # the unschedulable N1^1 alternative

    def test_writes_json_output(self, tmp_path, capsys):
        output = tmp_path / "motivational.json"
        exit_code = main(["motivational", "--output", str(output)])
        assert exit_code == 0
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert "fig3" in payload and "fig4" in payload and "appendix" in payload


class TestSyntheticCommand:
    def test_smoke_preset_runs_figure_6a(self, capsys):
        exit_code = main(["synthetic", "--figure", "6a", "--preset", "smoke"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 6a" in captured
        assert "MIN" in captured and "OPT" in captured


class TestCruiseControlCommand:
    def test_prints_study_table(self, capsys):
        exit_code = main(["cruise-control"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Cruise controller" in captured
        assert "OPT cost saving over MAX" in captured


class TestServeCommand:
    def test_serve_flags_parse(self):
        parser = build_parser()
        arguments = parser.parse_args(
            [
                "serve",
                "--port", "9000",
                "--workers", "4",
                "--queue-size", "8",
                "--job-timeout", "30",
                "--no-single-flight",
                "--sanitize",
            ]
        )
        assert arguments.command == "serve"
        assert arguments.port == 9000
        assert arguments.workers == 4
        assert arguments.queue_size == 8
        assert arguments.job_timeout == 30.0
        assert arguments.no_single_flight is True
        assert arguments.sanitize is True

    @pytest.mark.parametrize("flag", ["--workers", "--queue-size"])
    def test_degenerate_counts_rejected_at_parse_time(self, flag):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", flag, "0"])

    def test_serve_builds_the_config_and_delegates(self, monkeypatch, tmp_path):
        import repro.serve

        seen = {}

        def fake_run_server(config):
            seen["config"] = config
            return 0

        monkeypatch.setattr(repro.serve, "run_server", fake_run_server)
        exit_code = main(
            [
                "serve",
                "--port", "9100",
                "--workers", "3",
                "--spool-dir", str(tmp_path / "spool"),
                "--no-single-flight",
            ]
        )
        assert exit_code == 0
        config = seen["config"]
        assert config.host == "127.0.0.1"
        assert config.port == 9100
        assert config.workers == 3
        assert config.single_flight is False
        assert config.spool_dir == tmp_path / "spool"

    def test_degenerate_timeout_is_a_clean_error(self, capsys):
        exit_code = main(["serve", "--job-timeout", "-1"])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err
