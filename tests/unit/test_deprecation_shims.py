"""Deprecation shims: old entry points warn once but behave identically.

Covers the satellite contract: ``set_default_*_kernel`` and the legacy CLI
subcommands emit a single :class:`DeprecationWarning` per invocation while
remaining bit-identical in behavior.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import api
from repro.cli import main
from repro.kernels import (
    KERNEL_ENV_VAR,
    SCHED_KERNEL_ENV_VAR,
    active_kernel,
    active_sched_kernel,
    set_default_kernel,
    set_default_sched_kernel,
)


@pytest.fixture(autouse=True)
def _no_env(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    monkeypatch.delenv(SCHED_KERNEL_ENV_VAR, raising=False)


class TestGlobalSetterShims:
    def test_set_default_kernel_warns_once_and_still_works(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            picked = set_default_kernel("reference")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "use_kernel" in str(deprecations[0].message)
        assert picked.name == "reference"
        assert active_kernel().name == "reference"

    def test_set_default_sched_kernel_warns_once_and_still_works(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            picked = set_default_sched_kernel("reference")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert picked.name == "reference"
        assert active_sched_kernel().name == "reference"


class TestLegacyCliShims:
    def test_motivational_warns_and_output_matches_scenario_text(self, capsys):
        with pytest.warns(DeprecationWarning, match="run motivational"):
            exit_code = main(["motivational"])
        assert exit_code == 0
        printed = capsys.readouterr().out
        report = api.run("motivational")
        assert printed == report.text + "\n"

    def test_synthetic_warns_and_payload_matches_api(self, tmp_path, capsys):
        output = tmp_path / "legacy.json"
        with pytest.warns(DeprecationWarning, match="run fig6a"):
            exit_code = main(
                ["synthetic", "--figure", "6a", "--preset", "smoke",
                 "--output", str(output)]
            )
        assert exit_code == 0
        legacy = json.loads(output.read_text(encoding="utf-8"))
        report = api.run("fig6a", api.RunConfig(preset="smoke"))
        assert legacy["6a"] == report.results["acceptance"]
        assert legacy["cache"]["kernel"] == report.kernels["sfp"]
        assert legacy["cache"]["sched_kernel"] == report.kernels["sched"]
