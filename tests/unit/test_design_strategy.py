"""Unit tests for the DesignStrategy architecture exploration."""

from __future__ import annotations

import pytest

from repro.core.architecture import HVersion, NodeType, linear_cost_node_type
from repro.core.design_strategy import ArchitectureEnumerator, DesignStrategy
from repro.core.exceptions import OptimizationError
from repro.core.mapping import MappingAlgorithm
from repro.experiments.motivational import fig1_application, fig1_node_types, fig1_profile


class TestArchitectureEnumerator:
    def test_requires_node_types(self):
        with pytest.raises(OptimizationError):
            ArchitectureEnumerator([])

    def test_duplicate_names_rejected(self):
        node_type = linear_cost_node_type("N1", 1.0, 2)
        with pytest.raises(OptimizationError):
            ArchitectureEnumerator([node_type, linear_cost_node_type("N1", 2.0, 2)])

    def test_candidates_ordered_fastest_first(self):
        fast = NodeType("fast", [HVersion(1, 1.0)], speed_factor=1.0)
        slow = NodeType("slow", [HVersion(1, 1.0)], speed_factor=2.0)
        medium = NodeType("medium", [HVersion(1, 1.0)], speed_factor=1.5)
        enumerator = ArchitectureEnumerator([slow, fast, medium])
        singles = enumerator.candidates(1)
        assert [subset[0].name for subset in singles] == ["fast", "medium", "slow"]
        pairs = enumerator.candidates(2)
        assert [tuple(t.name for t in subset) for subset in pairs][0] == ("fast", "medium")

    def test_candidate_counts(self):
        node_types = [linear_cost_node_type(f"N{i}", 1.0, 2) for i in range(1, 5)]
        enumerator = ArchitectureEnumerator(node_types)
        assert len(enumerator.candidates(1)) == 4
        assert len(enumerator.candidates(2)) == 6
        assert len(enumerator.candidates(4)) == 1
        assert enumerator.candidates(0) == []
        assert enumerator.candidates(5) == []

    def test_build_resets_to_min_hardening(self, fig1_nodes):
        enumerator = ArchitectureEnumerator(list(fig1_nodes))
        architecture = enumerator.build(enumerator.candidates(2)[0])
        assert set(architecture.hardening_vector().values()) == {1}
        assert len(architecture) == 2


class TestDesignStrategyFig1:
    """End-to-end exploration of the Fig. 1 example.

    The paper's conclusion (Fig. 4): the cheapest feasible implementation is
    the two-node architecture N1^2 + N2^2 at cost 72 (the monoprocessor N2^3
    costs 80).
    """

    @pytest.fixture
    def strategy(self):
        algorithm = MappingAlgorithm(max_iterations=6, stop_after_no_improvement=3)
        return DesignStrategy(list(fig1_node_types()), mapping_algorithm=algorithm)

    def test_finds_solution_at_most_papers_cost(self, strategy):
        result = strategy.explore(fig1_application(), fig1_profile())
        assert result.feasible
        assert result.is_accepted()
        # The paper's hand-picked solution (Fig. 4a) costs 72; the exploration
        # must find that design or a cheaper feasible one (with our bus timing
        # it finds a 52-unit design that hides the unhardened node's recovery
        # slack under the other node's schedule).
        assert result.cost <= 72.0
        assert result.schedule_length <= 360.0
        assert result.meets_reliability
        assert result.strategy == "OPT"
        # The trade-off signature of the paper is preserved: not every node is
        # maximally hardened, and software re-executions are still used.
        assert any(level < 3 for level in result.hardening.values())
        assert sum(result.reexecutions.values()) >= 1

    def test_acceptance_respects_cost_cap(self, strategy):
        result = strategy.explore(fig1_application(), fig1_profile())
        assert result.is_accepted(max_architecture_cost=result.cost)
        assert not result.is_accepted(max_architecture_cost=result.cost - 1.0)

    def test_infeasible_with_impossible_deadline(self):
        application = fig1_application()
        tight = type(application)(
            name="tight",
            deadline=40.0,
            reliability_goal=application.reliability_goal,
            recovery_overhead=15.0,
            period=40.0,
        )
        graph = tight.new_graph("G1")
        from repro.core.application import Message, Process

        for name in ("P1", "P2", "P3", "P4"):
            graph.add_process(Process(name))
        graph.add_message(Message("m1", "P1", "P2", transmission_time=10.0))
        graph.add_message(Message("m2", "P1", "P3", transmission_time=10.0))
        graph.add_message(Message("m3", "P2", "P4", transmission_time=10.0))
        graph.add_message(Message("m4", "P3", "P4", transmission_time=10.0))
        strategy = DesignStrategy(
            list(fig1_node_types()),
            mapping_algorithm=MappingAlgorithm(max_iterations=2),
        )
        result = strategy.explore(tight, fig1_profile())
        assert not result.feasible
        assert not result.is_accepted()
        assert "deadline" in result.failure_reason or result.failure_reason


class TestDesignStrategyReporting:
    def test_result_records_node_types_and_mapping(self):
        strategy = DesignStrategy(
            list(fig1_node_types()),
            mapping_algorithm=MappingAlgorithm(max_iterations=4),
        )
        result = strategy.explore(fig1_application(), fig1_profile())
        assert set(result.node_types.values()) <= {"N1", "N2"}
        assert result.mapping is not None
        assert set(result.mapping.as_dict()) == {"P1", "P2", "P3", "P4"}
        assert result.schedule is not None
        result.schedule.validate()
        assert result.evaluations > 0
