"""Unit tests for the memoized evaluation engine subsystem."""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, Node, linear_cost_node_type
from repro.core.mapping_model import ProcessMapping
from repro.core.sfp import (
    probability_exceeds,
    probability_no_fault,
    system_failure_probability,
)
from repro.engine import EvaluationEngine, MISS, MemoCache
from repro.engine.cache import CacheStats
from repro.engine.fingerprint import (
    application_fingerprint,
    architecture_fingerprint,
    hardening_fingerprint,
    mapping_fingerprint,
    profile_fingerprint,
)
from repro.experiments.motivational import fig1_application, fig1_profile


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_mapping_fingerprint_ignores_insertion_order(self):
        first = ProcessMapping({"P1": "N1", "P2": "N2"})
        second = ProcessMapping({"P2": "N2", "P1": "N1"})
        assert mapping_fingerprint(first) == mapping_fingerprint(second)

    def test_mapping_fingerprint_distinguishes_assignments(self):
        first = ProcessMapping({"P1": "N1", "P2": "N2"})
        second = ProcessMapping({"P1": "N2", "P2": "N1"})
        assert mapping_fingerprint(first) != mapping_fingerprint(second)

    def test_hardening_fingerprint_is_canonical(self):
        assert hardening_fingerprint({"N2": 1, "N1": 3}) == (("N1", 3), ("N2", 1))

    def test_architecture_fingerprint_excludes_levels(self):
        node_type = linear_cost_node_type("NT", base_cost=2.0, levels=3)
        architecture = Architecture([Node("N1", node_type)])
        before = architecture_fingerprint(architecture)
        architecture.node("N1").hardening = 3
        assert architecture_fingerprint(architecture) == before

    def test_application_fingerprint_is_stable(self):
        application = fig1_application()
        assert application_fingerprint(application) == application_fingerprint(
            application
        )

    def test_profile_fingerprint_tracks_content(self):
        profile = fig1_profile()
        before = profile_fingerprint(profile)
        assert before == profile_fingerprint(fig1_profile())
        profile.add_entry("P1", "N1", 1, wcet=123.0, failure_probability=0.5)
        assert profile_fingerprint(profile) != before


# ----------------------------------------------------------------------
# cache primitives
# ----------------------------------------------------------------------
class TestMemoCache:
    def test_miss_then_hit(self):
        cache = MemoCache("test")
        assert cache.get("k") is MISS
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.hits == 1
        assert cache.misses == 1

    def test_none_is_a_cacheable_value(self):
        cache = MemoCache("test")
        calls = []

        def compute():
            calls.append(1)
            return None

        assert cache.memoize("k", compute) is None
        assert cache.memoize("k", compute) is None
        assert calls == [1]

    def test_stats_arithmetic(self):
        total = CacheStats(hits=3, misses=1) + CacheStats(hits=1, misses=3)
        assert total.hits == 4
        assert total.misses == 4
        assert total.hit_rate == 0.5
        assert CacheStats().hit_rate == 0.0


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
@pytest.fixture
def engine():
    return EvaluationEngine(fig1_application(), fig1_profile())


class TestEvaluationEngine:
    def test_matches_is_identity_based(self, engine):
        assert engine.matches(engine.application, engine.profile)
        assert not engine.matches(fig1_application(), engine.profile)
        assert not engine.matches(engine.application, fig1_profile())

    def test_memoized_sfp_matches_module_functions(self, engine):
        probabilities = (1.2e-5, 3.4e-6, 5.6e-7)
        for reexecutions in range(4):
            assert engine.node_exceedance(
                probabilities, reexecutions, 11
            ) == probability_exceeds(probabilities, reexecutions, 11)
        assert engine.node_no_fault(probabilities, 11) == probability_no_fault(
            probabilities, 11
        )
        exceedances = (1.0e-9, 2.0e-9)
        assert engine.system_failure(exceedances, 11) == system_failure_probability(
            exceedances, 11
        )

    def test_memoized_sfp_counts_hits(self, engine):
        probabilities = (1.2e-5, 3.4e-6)
        engine.node_exceedance(probabilities, 1, 11)
        engine.node_exceedance(probabilities, 1, 11)
        assert engine.exceedance.hits == 1
        assert engine.exceedance.misses == 1
        assert engine.stats.hits == 1

    def test_report_shape(self, engine):
        report = engine.report()
        assert {"context", "evaluations", "hits", "misses", "hit_rate", "caches"} <= set(
            report
        )
        assert set(report["caches"]) == {
            "decisions",
            "optimizations",
            "exceedance",
            "no_fault",
            "system_failure",
        }

    def test_clear_keeps_counters(self, engine):
        engine.node_exceedance((1e-6,), 0, 11)
        engine.clear()
        assert len(engine.exceedance) == 0
        assert engine.exceedance.misses == 1
