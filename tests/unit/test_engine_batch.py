"""Engine batch partitioning: batched lookups ≡ sequential, counters included.

``EvaluationEngine.batch_node_exceedance`` partitions a block of
(probabilities, budget) rows against the exceedance memo and hands only the
residual cold rows to the kernel.  The contract — asserted here under
hypothesis-driven mixes of memo hits, preloaded (store) hits, cold rows and
intra-batch duplicates — is that the returned values *and every cache
counter* (hits, misses, disk hits) are bit-identical to issuing the rows as
sequential scalar calls on a twin engine.  ``get_many``'s duplicate handling
is pinned separately: later occurrences of an uncached key count as hits,
exactly as the scalar loop (which computes and stores before the next
lookup) would count them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EvaluationEngine, MISS, MemoCache
from repro.engine.cache import BatchStats
from repro.experiments.motivational import fig1_application, fig1_profile

#: A small tuple pool so batches mix repeats (memo hits / duplicates) with
#: fresh rows at high probability.
TUPLE_POOL = (
    (),
    (0.1,),
    (0.2, 0.3),
    (1e-5, 2e-5, 3e-5),
    (0.5, 0.5),
    (0.25, 0.125, 0.0625, 0.03125),
)

REQUEST = st.tuples(
    st.sampled_from(TUPLE_POOL), st.integers(min_value=0, max_value=4)
)


def _twin_engines():
    application, profile = fig1_application(), fig1_profile()
    return (
        EvaluationEngine(application, profile),
        EvaluationEngine(application, profile),
    )


def _counters(engine):
    return (
        engine.exceedance.hits,
        engine.exceedance.misses,
        engine.exceedance.disk_hits,
        len(engine.exceedance),
    )


class TestBatchNodeExceedance:
    @given(
        warm=st.lists(REQUEST, max_size=6),
        preloaded=st.lists(REQUEST, max_size=4),
        batch=st.lists(REQUEST, max_size=12),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_sequential_with_identical_counters(
        self, warm, preloaded, batch
    ):
        """Any memo-hit / store-hit / cold / duplicate mix is equivalent."""
        batched_engine, scalar_engine = _twin_engines()
        for engine in (batched_engine, scalar_engine):
            # Store hits: preloaded entries count disk_hits on first touch.
            engine.exceedance.load(
                {
                    (probabilities, budget, engine.decimals): 0.123
                    for probabilities, budget in preloaded
                }
            )
            # Memo hits: warm a subset through the scalar path on both twins.
            for probabilities, budget in warm:
                engine.node_exceedance(probabilities, budget, engine.decimals)

        expected = [
            scalar_engine.node_exceedance(
                probabilities, budget, scalar_engine.decimals
            )
            for probabilities, budget in batch
        ]
        produced = batched_engine.batch_node_exceedance(
            batch, batched_engine.decimals
        )
        assert produced == expected
        assert _counters(batched_engine) == _counters(scalar_engine)
        assert batched_engine.batch.calls == 1
        assert batched_engine.batch.rows == len(batch)
        assert scalar_engine.batch.rows == 0

    @given(batch=st.lists(REQUEST, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_repeated_batch_is_all_hits(self, batch):
        engine, _ = _twin_engines()
        first = engine.batch_node_exceedance(batch, engine.decimals)
        misses_after_first = engine.exceedance.misses
        second = engine.batch_node_exceedance(batch, engine.decimals)
        assert second == first
        assert engine.exceedance.misses == misses_after_first
        assert engine.batch.calls == 2
        assert engine.batch.cold_rows <= engine.batch.rows

    def test_empty_batch(self):
        engine, _ = _twin_engines()
        assert engine.batch_node_exceedance([], engine.decimals) == []
        assert engine.batch.calls == 1
        assert engine.batch.rows == 0
        assert engine.batch.fill_rate == 0.0


class TestGetMany:
    def test_partitions_hits_cold_and_duplicates(self):
        cache = MemoCache("t")
        cache.put("a", 1)
        values, cold, duplicates = cache.get_many(["a", "b", "b", "c", "a"])
        assert values == [1, MISS, MISS, MISS, 1]
        assert cold == [1, 3]
        assert duplicates == {2: 1}
        # Counters mirror the scalar loop: a/a hits, first b misses, second
        # b would have been computed already (hit), c misses.
        assert cache.hits == 3
        assert cache.misses == 2

    def test_preloaded_keys_count_disk_hits(self):
        cache = MemoCache("t")
        cache.load({"a": 1})
        values, cold, duplicates = cache.get_many(["a", "a", "b"])
        assert values == [1, 1, MISS]
        assert cold == [2]
        assert duplicates == {}
        assert cache.disk_hits == 2

    def test_cached_none_is_not_a_miss(self):
        cache = MemoCache("t")
        cache.put("a", None)
        values, cold, duplicates = cache.get_many(["a"])
        assert values == [None]
        assert cold == []


class TestBatchStats:
    def test_record_and_fill_rate(self):
        stats = BatchStats()
        stats.record(rows=10, cold_rows=4)
        stats.record(rows=0, cold_rows=0)
        assert stats.calls == 2
        assert stats.rows == 10
        assert stats.fill_rate == 0.4

    def test_add_and_as_dict(self):
        total = BatchStats(calls=1, rows=4, cold_rows=2) + BatchStats(
            calls=1, rows=6, cold_rows=3
        )
        assert total.as_dict() == {
            "calls": 2,
            "rows": 10,
            "cold_rows": 5,
            "fill_rate": 0.5,
        }

    def test_engine_report_includes_batch(self):
        engine, _ = _twin_engines()
        engine.record_batch(rows=8, cold_rows=2)
        report = engine.report()
        assert report["batch"] == {
            "calls": 1,
            "rows": 8,
            "cold_rows": 2,
            "fill_rate": 0.25,
        }


@pytest.mark.parametrize("family_auto", ["array", "flat"])
def test_auto_selection_still_prefers_scalar_fast_backends(family_auto):
    """``batch`` is opt-in by name: auto must keep picking array/flat."""
    from repro.kernels import kernel_names, sched_kernel_names

    names = (
        kernel_names(available_only=True)
        if family_auto == "array"
        else sched_kernel_names(available_only=True)
    )
    assert names[0] == family_auto
    assert "batch" in names
