"""Unit tests for design-result records and acceptance accounting."""

from __future__ import annotations

import pytest

from repro.core.evaluation import DesignResult, acceptance_rate, infeasible_result
from repro.core.mapping_model import ProcessMapping


def _feasible_result(cost: float = 10.0, schedule_length: float = 100.0) -> DesignResult:
    return DesignResult(
        strategy="OPT",
        application="app",
        feasible=True,
        node_types={"N1": "N1"},
        hardening={"N1": 2},
        reexecutions={"N1": 1},
        mapping=ProcessMapping({"P1": "N1"}),
        schedule=None,
        schedule_length=schedule_length,
        deadline=200.0,
        cost=cost,
        meets_reliability=True,
    )


class TestDesignResult:
    def test_accepted_when_all_criteria_hold(self):
        result = _feasible_result()
        assert result.meets_deadline
        assert result.is_accepted()
        assert result.is_accepted(max_architecture_cost=10.0)

    def test_rejected_on_cost_cap(self):
        assert not _feasible_result(cost=25.0).is_accepted(max_architecture_cost=20.0)

    def test_rejected_on_deadline(self):
        result = _feasible_result(schedule_length=500.0)
        assert not result.meets_deadline
        assert not result.is_accepted()

    def test_rejected_when_infeasible(self):
        result = infeasible_result("MIN", "app", "no solution")
        assert not result.is_accepted()
        assert result.failure_reason == "no solution"
        assert not result.feasible

    def test_rejected_when_reliability_not_met(self):
        result = DesignResult(
            strategy="MIN",
            application="app",
            feasible=True,
            schedule_length=50.0,
            deadline=100.0,
            cost=5.0,
            meets_reliability=False,
        )
        assert not result.is_accepted()

    def test_summary_mentions_strategy_and_cost(self):
        summary = _feasible_result().summary()
        assert "OPT" in summary
        assert "cost=10.0" in summary

    def test_summary_for_infeasible_result(self):
        summary = infeasible_result("MAX", "app", "too slow").summary()
        assert "infeasible" in summary
        assert "too slow" in summary


class TestAcceptanceRate:
    def test_empty_list_gives_zero(self):
        assert acceptance_rate([]) == 0.0

    def test_mixed_results(self):
        results = [
            _feasible_result(cost=10.0),
            _feasible_result(cost=30.0),
            infeasible_result("OPT", "x", "nope"),
        ]
        assert acceptance_rate(results) == pytest.approx(2 / 3)
        assert acceptance_rate(results, max_architecture_cost=20.0) == pytest.approx(1 / 3)
