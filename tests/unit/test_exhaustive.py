"""Unit tests for the exhaustive (optimal) design-space search."""

from __future__ import annotations

import pytest

from repro.core.application import Application, Message, Process
from repro.core.exceptions import OptimizationError
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.design_strategy import DesignStrategy
from repro.core.mapping import MappingAlgorithm
from repro.experiments.motivational import fig1_application, fig1_node_types, fig1_profile


class TestExhaustiveSearchLimits:
    def test_requires_node_types(self):
        with pytest.raises(OptimizationError):
            ExhaustiveSearch([])

    def test_rejects_large_instances(self):
        application = Application("big", deadline=100.0, reliability_goal=0.999)
        graph = application.new_graph("G")
        for index in range(10):
            graph.add_process(Process(f"P{index}", nominal_wcet=1.0))
        search = ExhaustiveSearch(list(fig1_node_types()), max_processes=8)
        with pytest.raises(OptimizationError):
            search.explore(application, fig1_profile())


class TestExhaustiveOnFig1:
    @pytest.fixture(scope="class")
    def optimal(self):
        search = ExhaustiveSearch(list(fig1_node_types()), max_nodes=2)
        return search.explore(fig1_application(), fig1_profile())

    def test_finds_a_feasible_design(self, optimal):
        assert optimal.feasible
        assert optimal.strategy == "EXHAUSTIVE"
        assert optimal.schedule_length <= 360.0
        assert optimal.meets_reliability

    def test_optimum_is_at_most_the_papers_solution(self, optimal):
        # The paper's hand-picked Fig. 4a design costs 72; the true optimum of
        # the enumerated space (with 10 ms messages) is 52.
        assert optimal.cost <= 72.0
        assert optimal.cost == pytest.approx(52.0)

    def test_heuristic_never_beats_the_exhaustive_optimum(self, optimal):
        strategy = DesignStrategy(
            list(fig1_node_types()),
            mapping_algorithm=MappingAlgorithm(max_iterations=6, stop_after_no_improvement=3),
        )
        heuristic = strategy.explore(fig1_application(), fig1_profile())
        assert heuristic.feasible
        assert heuristic.cost >= optimal.cost - 1e-9

    def test_cost_cap_prunes_to_infeasible(self):
        search = ExhaustiveSearch(list(fig1_node_types()), max_nodes=2)
        result = search.explore(
            fig1_application(), fig1_profile(), max_architecture_cost=30.0
        )
        assert not result.feasible

    def test_reports_evaluation_count(self, optimal):
        assert optimal.evaluations > 0


class TestExhaustiveOnTinyInstance:
    def test_single_process_picks_cheapest_sufficient_hardening(self):
        from repro.experiments.motivational import (
            fig3_application,
            fig3_node_type,
            fig3_profile,
        )

        search = ExhaustiveSearch([fig3_node_type()], max_nodes=1)
        result = search.explore(fig3_application(), fig3_profile())
        assert result.feasible
        # Fig. 3: the cheapest feasible h-version is the second one (cost 20).
        assert result.cost == 20.0
        assert result.hardening == {"N1": 2}
