"""Unit tests for the technology / hardening fault models."""

from __future__ import annotations

import pytest

from repro.core.application import Application, Process
from repro.core.architecture import linear_cost_node_type
from repro.core.exceptions import ModelError
from repro.core.fault_model import (
    SER_HIGH,
    SER_LOW,
    SER_MEDIUM,
    FaultModel,
    HardeningModel,
    TechnologyModel,
    failure_probability_from_ser,
)


class TestTechnologyModel:
    def test_cycles_for(self):
        technology = TechnologyModel(ser_per_cycle=1e-10, clock_mhz=100.0)
        assert technology.cycles_for(10.0) == pytest.approx(1e6)

    def test_invalid_ser_rejected(self):
        with pytest.raises(ValueError):
            TechnologyModel(ser_per_cycle=1.5)

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            TechnologyModel(ser_per_cycle=1e-10, clock_mhz=0.0)

    def test_paper_ser_constants_ordering(self):
        assert SER_LOW < SER_MEDIUM < SER_HIGH


class TestHardeningModel:
    def test_ser_scale_decreases_with_level(self):
        model = HardeningModel(levels=5, ser_reduction_per_level=100.0)
        scales = [model.ser_scale(level) for level in range(1, 6)]
        assert scales[0] == 1.0
        assert scales == sorted(scales, reverse=True)
        assert scales[4] == pytest.approx(1e-8)

    def test_wcet_increase_follows_paper_hpd_100(self):
        # HPD = 100 %: increases of 1, 25, 50, 75 and 100 % per level.
        model = HardeningModel(levels=5, performance_degradation=100.0)
        increases = [model.wcet_increase_percent(level) for level in range(1, 6)]
        assert increases == pytest.approx([1.0, 25.75, 50.5, 75.25, 100.0], rel=0.05)

    def test_wcet_increase_follows_paper_hpd_5(self):
        # HPD = 5 %: increases of roughly 1, 2, 3, 4 and 5 % per level.
        model = HardeningModel(levels=5, performance_degradation=5.0)
        increases = [model.wcet_increase_percent(level) for level in range(1, 6)]
        assert increases == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0], rel=1e-9)

    def test_zero_hpd_means_no_slowdown(self):
        model = HardeningModel(levels=3, performance_degradation=0.0)
        assert model.wcet_scale(3) == 1.0

    def test_wcet_scale_monotone_in_level(self):
        model = HardeningModel(levels=5, performance_degradation=25.0)
        scales = [model.wcet_scale(level) for level in range(1, 6)]
        assert scales == sorted(scales)

    def test_invalid_level_rejected(self):
        model = HardeningModel(levels=3)
        with pytest.raises(ModelError):
            model.ser_scale(4)
        with pytest.raises(ModelError):
            model.wcet_scale(0)

    def test_reduction_below_one_rejected(self):
        with pytest.raises(ModelError):
            HardeningModel(ser_reduction_per_level=0.5)

    def test_single_level_model(self):
        model = HardeningModel(levels=1, performance_degradation=10.0)
        assert model.hardening_levels() == [1]
        assert model.wcet_increase_percent(1) == 10.0


class TestFailureProbabilityFromSer:
    def test_zero_rate_gives_zero(self):
        assert failure_probability_from_ser(0.0, 1e9) == 0.0

    def test_small_rate_approximates_linear(self):
        probability = failure_probability_from_ser(1e-10, 1e6)
        assert probability == pytest.approx(1e-4, rel=1e-3)

    def test_large_cycles_saturate_at_one(self):
        assert failure_probability_from_ser(0.5, 1e6) == pytest.approx(1.0)

    def test_monotone_in_cycles(self):
        low = failure_probability_from_ser(1e-9, 1e5)
        high = failure_probability_from_ser(1e-9, 1e7)
        assert high > low


class TestFaultModel:
    def _application(self) -> Application:
        application = Application("app", deadline=100.0, reliability_goal=0.99999)
        graph = application.new_graph("G")
        graph.add_process(Process("P1", nominal_wcet=10.0))
        graph.add_process(Process("P2", nominal_wcet=20.0))
        return application

    def test_build_profile_covers_all_entries(self):
        application = self._application()
        node_types = [
            linear_cost_node_type("N1", 2.0, levels=3),
            linear_cost_node_type("N2", 3.0, levels=3, speed_factor=1.5),
        ]
        model = FaultModel(
            TechnologyModel(ser_per_cycle=1e-10, clock_mhz=100.0),
            HardeningModel(levels=3, performance_degradation=50.0),
        )
        profile = model.build_profile(application, node_types)
        assert len(profile) == 2 * 2 * 3
        profile.validate_against(application, node_types)

    def test_wcet_scales_with_speed_factor_and_level(self):
        model = FaultModel(
            TechnologyModel(ser_per_cycle=1e-10),
            HardeningModel(levels=3, performance_degradation=100.0),
        )
        base = model.wcet(10.0, 1.0, 1)
        slower_node = model.wcet(10.0, 1.5, 1)
        hardened = model.wcet(10.0, 1.0, 3)
        assert slower_node == pytest.approx(base * 1.5)
        assert hardened > base

    def test_failure_probability_decreases_with_hardening(self):
        model = FaultModel(
            TechnologyModel(ser_per_cycle=1e-10, clock_mhz=1000.0),
            HardeningModel(levels=5, ser_reduction_per_level=100.0),
        )
        probabilities = [
            model.failure_probability("N1", 10.0, level) for level in range(1, 6)
        ]
        assert probabilities == sorted(probabilities, reverse=True)
        assert probabilities[0] / probabilities[1] == pytest.approx(100.0, rel=1e-3)

    def test_per_node_type_technology_mapping(self):
        model = FaultModel(
            {
                "N1": TechnologyModel(ser_per_cycle=1e-10),
                "N2": TechnologyModel(ser_per_cycle=1e-12),
            },
            HardeningModel(levels=2),
        )
        p1 = model.failure_probability("N1", 10.0, 1)
        p2 = model.failure_probability("N2", 10.0, 1)
        assert p1 > p2
        with pytest.raises(ModelError):
            model.failure_probability("N3", 10.0, 1)

    def test_empty_technology_mapping_rejected(self):
        with pytest.raises(ModelError):
            FaultModel({}, HardeningModel(levels=2))

    def test_missing_nominal_wcet_rejected(self):
        application = Application("app", deadline=10.0, reliability_goal=0.99)
        application.new_graph("G").add_process(Process("P1"))
        model = FaultModel(TechnologyModel(1e-10), HardeningModel(levels=2))
        with pytest.raises(ModelError):
            model.build_profile(application, [linear_cost_node_type("N1", 1.0, 2)])

    def test_baseline_wcets_override(self):
        application = self._application()
        model = FaultModel(TechnologyModel(1e-10), HardeningModel(levels=2))
        node_types = [linear_cost_node_type("N1", 1.0, 2)]
        profile = model.build_profile(
            application, node_types, baseline_wcets={"P1": 5.0, "P2": 20.0}
        )
        assert profile.wcet("P1", "N1", 1) == pytest.approx(5.0 * 1.01)

    def test_more_levels_than_model_rejected(self):
        application = self._application()
        model = FaultModel(TechnologyModel(1e-10), HardeningModel(levels=2))
        with pytest.raises(ModelError):
            model.build_profile(application, [linear_cost_node_type("N1", 1.0, 5)])
