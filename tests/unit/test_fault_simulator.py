"""Unit tests for the Monte-Carlo fault-scenario simulator."""

from __future__ import annotations

import pytest

from repro.core.application import Application, Process
from repro.core.architecture import Architecture, HVersion, Node, NodeType
from repro.core.exceptions import ModelError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.scheduling.list_scheduler import ListScheduler
from repro.simulation import FaultScenarioSimulator


def _single_node_problem(failure_probability: float, budget: int):
    application = Application(
        "sim", deadline=1_000.0, reliability_goal=1 - 1e-5, recovery_overhead=2.0
    )
    graph = application.new_graph("G")
    graph.add_process(Process("P1", nominal_wcet=10.0))
    graph.add_process(Process("P2", nominal_wcet=20.0))
    node_type = NodeType("N", [HVersion(1, 1.0)])
    profile = ExecutionProfile()
    profile.add_entry("P1", "N", 1, 10.0, failure_probability)
    profile.add_entry("P2", "N", 1, 20.0, failure_probability)
    architecture = Architecture([Node("N", node_type)])
    mapping = ProcessMapping({"P1": "N", "P2": "N"})
    schedule = ListScheduler().schedule(
        application, architecture, mapping, profile, {"N": budget}
    )
    return application, architecture, mapping, profile, schedule


class TestSimulatorBasics:
    def test_invalid_iteration_count_rejected(self):
        with pytest.raises(ModelError):
            FaultScenarioSimulator(iterations=0)

    def test_no_faults_when_probability_is_zero(self):
        problem = _single_node_problem(0.0, budget=0)
        summary = FaultScenarioSimulator(iterations=500, seed=1).simulate(*problem)
        assert summary.total_faults_injected == 0
        assert summary.unrecovered_iterations == 0
        assert summary.observed_failure_rate == 0.0
        assert summary.timing_validated

    def test_reproducible_with_seed(self):
        problem = _single_node_problem(0.05, budget=1)
        first = FaultScenarioSimulator(iterations=2_000, seed=3).simulate(*problem)
        second = FaultScenarioSimulator(iterations=2_000, seed=3).simulate(*problem)
        assert first.total_faults_injected == second.total_faults_injected
        assert first.unrecovered_iterations == second.unrecovered_iterations

    def test_faults_are_injected_at_high_rates(self):
        problem = _single_node_problem(0.2, budget=3)
        summary = FaultScenarioSimulator(iterations=2_000, seed=5).simulate(*problem)
        assert summary.total_faults_injected > 0
        assert summary.iterations_with_faults > 0
        assert summary.sample_outcomes  # some faulty iterations are retained

    def test_zero_budget_with_faults_gives_unrecovered_iterations(self):
        problem = _single_node_problem(0.1, budget=0)
        summary = FaultScenarioSimulator(iterations=2_000, seed=7).simulate(*problem)
        assert summary.unrecovered_iterations > 0
        # Observed unrecovered rate should be near 1 - (1-p)^2 ~ 0.19.
        assert summary.observed_failure_rate == pytest.approx(0.19, abs=0.05)


class TestSimulatorGuarantees:
    def test_timing_never_exceeds_worst_case_within_budget(self):
        problem = _single_node_problem(0.2, budget=4)
        summary = FaultScenarioSimulator(iterations=3_000, seed=11).simulate(*problem)
        assert summary.timing_validated
        assert summary.max_relative_completion <= 1.0 + 1e-9

    def test_observed_failure_rate_respects_sfp_bound(self):
        problem = _single_node_problem(0.05, budget=2)
        summary = FaultScenarioSimulator(iterations=5_000, seed=13).simulate(*problem)
        assert summary.respects_sfp_bound

    def test_fig4a_schedule_validates(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        schedule = ListScheduler().schedule(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, {"N1": 1, "N2": 1}
        )
        summary = FaultScenarioSimulator(iterations=3_000, seed=17).simulate(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, schedule
        )
        assert summary.timing_validated
        assert summary.respects_sfp_bound

    def test_budget_override_argument(self):
        application, architecture, mapping, profile, schedule = _single_node_problem(
            0.1, budget=0
        )
        generous = FaultScenarioSimulator(iterations=2_000, seed=19).simulate(
            application, architecture, mapping, profile, schedule, reexecutions={"N": 5}
        )
        strict = FaultScenarioSimulator(iterations=2_000, seed=19).simulate(
            application, architecture, mapping, profile, schedule
        )
        assert generous.unrecovered_iterations < strict.unrecovered_iterations
