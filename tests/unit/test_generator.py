"""Unit tests for the synthetic benchmark generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ModelError
from repro.generator.benchmark import (
    BenchmarkConfig,
    build_platform,
    generate_benchmark,
    generate_benchmark_suite,
)
from repro.generator.platform import generate_node_specs
from repro.generator.taskgraph import generate_task_graph


class TestTaskGraphGenerator:
    def test_process_count(self):
        rng = np.random.default_rng(1)
        graph = generate_task_graph("g", 20, rng)
        assert len(graph) == 20

    def test_graph_is_acyclic_and_connected_forward(self):
        rng = np.random.default_rng(2)
        graph = generate_task_graph("g", 30, rng)
        order = graph.topological_order()
        assert len(order) == 30
        sources = set(graph.sources())
        for process in graph.process_names:
            if process not in sources:
                assert graph.predecessors(process), f"{process} has no predecessor"

    def test_wcets_within_range(self):
        rng = np.random.default_rng(3)
        graph = generate_task_graph("g", 25, rng, wcet_range=(1.0, 20.0))
        for process in graph.processes:
            assert 1.0 <= process.nominal_wcet <= 20.0

    def test_message_times_within_range(self):
        rng = np.random.default_rng(4)
        graph = generate_task_graph("g", 25, rng, message_time_range=(0.5, 2.0))
        assert graph.messages, "expected at least one message"
        for message in graph.messages:
            assert 0.5 <= message.transmission_time <= 2.0

    def test_single_process_graph(self):
        rng = np.random.default_rng(5)
        graph = generate_task_graph("g", 1, rng)
        assert len(graph) == 1
        assert graph.messages == []

    def test_reproducible_for_same_seed(self):
        first = generate_task_graph("g", 15, np.random.default_rng(7))
        second = generate_task_graph("g", 15, np.random.default_rng(7))
        assert [p.nominal_wcet for p in first.processes] == [
            p.nominal_wcet for p in second.processes
        ]
        assert [(m.source, m.destination) for m in first.messages] == [
            (m.source, m.destination) for m in second.messages
        ]

    def test_invalid_parameters_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ModelError):
            generate_task_graph("g", 0, rng)
        with pytest.raises(ModelError):
            generate_task_graph("g", 5, rng, wcet_range=(0.0, 1.0))
        with pytest.raises(ModelError):
            generate_task_graph("g", 5, rng, extra_edge_probability=1.5)


class TestPlatformGenerator:
    def test_spec_count_and_ranges(self):
        rng = np.random.default_rng(11)
        specs = generate_node_specs(5, rng, base_cost_range=(1.0, 6.0))
        assert len(specs) == 5
        for spec in specs:
            assert 1.0 <= spec.base_cost <= 6.0
            assert spec.speed_factor >= 1.0

    def test_fastest_node_normalised(self):
        rng = np.random.default_rng(12)
        specs = generate_node_specs(4, rng, speed_factor_range=(1.0, 1.4))
        assert min(spec.speed_factor for spec in specs) == pytest.approx(1.0)

    def test_to_node_type_linear_costs(self):
        rng = np.random.default_rng(13)
        spec = generate_node_specs(1, rng)[0]
        node_type = spec.to_node_type(5)
        assert node_type.max_hardening == 5
        assert node_type.cost(5) == pytest.approx(spec.base_cost * 5)

    def test_invalid_parameters_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ModelError):
            generate_node_specs(0, rng)
        with pytest.raises(ModelError):
            generate_node_specs(2, rng, base_cost_range=(3.0, 1.0))


class TestBenchmarkGenerator:
    def test_benchmark_is_valid_application(self):
        benchmark = generate_benchmark(seed=3)
        benchmark.application.validate()
        assert benchmark.application.number_of_processes() == 20
        assert len(benchmark.node_specs) == 4

    def test_recovery_overheads_follow_fraction_range(self):
        config = BenchmarkConfig(recovery_overhead_fraction=(0.01, 0.10))
        benchmark = generate_benchmark(seed=5, config=config)
        application = benchmark.application
        for process in application.processes():
            overhead = application.recovery_overhead_of(process.name)
            assert 0.01 * process.nominal_wcet <= overhead <= 0.10 * process.nominal_wcet

    def test_reliability_goal_in_paper_range(self):
        benchmark = generate_benchmark(seed=8)
        gamma = benchmark.application.gamma
        assert 7.5e-6 <= gamma <= 2.5e-5

    def test_deadline_at_least_critical_path(self):
        benchmark = generate_benchmark(seed=9)
        graph = benchmark.application.graphs[0]
        critical_path = graph.critical_path_length(
            lambda name: graph.process(name).nominal_wcet
        )
        assert benchmark.application.deadline >= critical_path

    def test_reproducibility(self):
        first = generate_benchmark(seed=21)
        second = generate_benchmark(seed=21)
        assert first.application.deadline == second.application.deadline
        assert [s.base_cost for s in first.node_specs] == [
            s.base_cost for s in second.node_specs
        ]

    def test_suite_alternates_process_counts(self):
        suite = generate_benchmark_suite(4, process_counts=(20, 40))
        counts = [benchmark.application.number_of_processes() for benchmark in suite]
        assert counts == [20, 40, 20, 40]

    def test_suite_requires_positive_count(self):
        with pytest.raises(ModelError):
            generate_benchmark_suite(0)

    def test_layers_knob_is_threaded_to_the_task_graph(self):
        # layers=1 puts every process in one layer: no precedence edges at
        # all; layers=n_processes forces a single chain with n-1 edges.
        config = BenchmarkConfig(n_processes=12, layers=1, extra_edge_probability=0.0)
        flat = generate_benchmark(seed=4, config=config)
        assert len(flat.application.graphs[0].messages) == 0
        chain_config = BenchmarkConfig(
            n_processes=12, layers=12, extra_edge_probability=0.0
        )
        chain = generate_benchmark(seed=4, config=chain_config)
        assert len(chain.application.graphs[0].messages) == 11

    def test_invalid_layers_rejected(self):
        with pytest.raises(ModelError, match="layers"):
            BenchmarkConfig(layers=0)

    def test_node_types_materialisation(self):
        benchmark = generate_benchmark(seed=2)
        node_types = benchmark.node_types()
        assert len(node_types) == 4
        assert all(node_type.max_hardening == 5 for node_type in node_types)


class TestBuildPlatform:
    def test_profile_covers_everything(self):
        benchmark = generate_benchmark(seed=4, config=BenchmarkConfig(n_processes=10))
        node_types, profile = build_platform(
            benchmark, ser_per_cycle=1e-11, hardening_performance_degradation=25.0
        )
        profile.validate_against(benchmark.application, node_types)

    def test_higher_ser_means_higher_failure_probability(self):
        benchmark = generate_benchmark(seed=4, config=BenchmarkConfig(n_processes=10))
        _, low = build_platform(benchmark, 1e-12, 25.0)
        _, high = build_platform(benchmark, 1e-10, 25.0)
        process = benchmark.application.process_names()[0]
        node = benchmark.node_specs[0].name
        assert high.failure_probability(process, node, 1) > low.failure_probability(
            process, node, 1
        )

    def test_hpd_increases_wcet_at_top_level(self):
        benchmark = generate_benchmark(seed=4, config=BenchmarkConfig(n_processes=10))
        _, small_hpd = build_platform(benchmark, 1e-11, 5.0)
        _, large_hpd = build_platform(benchmark, 1e-11, 100.0)
        process = benchmark.application.process_names()[0]
        node = benchmark.node_specs[0].name
        assert large_hpd.wcet(process, node, 5) > small_hpd.wcet(process, node, 5)
        # The minimum hardening level is barely affected (1 % in both cases).
        assert large_hpd.wcet(process, node, 1) == pytest.approx(
            small_hpd.wcet(process, node, 1)
        )

    def test_hardening_reduces_failure_probability(self):
        benchmark = generate_benchmark(seed=4, config=BenchmarkConfig(n_processes=10))
        _, profile = build_platform(benchmark, 1e-10, 25.0)
        process = benchmark.application.process_names()[0]
        node = benchmark.node_specs[0].name
        probabilities = [
            profile.failure_probability(process, node, level) for level in range(1, 6)
        ]
        assert probabilities == sorted(probabilities, reverse=True)
