"""Unit tests for selective hardening plans."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ModelError
from repro.faults.hardening import (
    HardeningLevelSpec,
    SelectiveHardeningPlan,
    apply_selective_hardening,
)
from repro.faults.processor import ProcessorModel


@pytest.fixture
def processor() -> ProcessorModel:
    return ProcessorModel(
        name="cpu", flip_flops=50_000, upset_rate_per_ff_cycle=1e-12, clock_mhz=200.0
    )


class TestHardeningLevelSpec:
    def test_valid_spec(self):
        spec = HardeningLevelSpec(level=2, hardened_fraction=0.5, slowdown_factor=1.1)
        assert spec.level == 2

    def test_invalid_level(self):
        with pytest.raises(ModelError):
            HardeningLevelSpec(level=0, hardened_fraction=0.5, slowdown_factor=1.1)

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(ModelError):
            HardeningLevelSpec(level=1, hardened_fraction=0.5, slowdown_factor=0.9)


class TestSelectiveHardeningPlan:
    def test_levels_must_be_consecutive(self):
        with pytest.raises(ModelError):
            SelectiveHardeningPlan(
                [
                    HardeningLevelSpec(1, 0.0, 1.0),
                    HardeningLevelSpec(3, 0.5, 1.1),
                ]
            )

    def test_protection_must_be_monotone(self):
        with pytest.raises(ModelError):
            SelectiveHardeningPlan(
                [
                    HardeningLevelSpec(1, 0.5, 1.0),
                    HardeningLevelSpec(2, 0.1, 1.1),
                ]
            )

    def test_slowdown_must_be_monotone(self):
        with pytest.raises(ModelError):
            SelectiveHardeningPlan(
                [
                    HardeningLevelSpec(1, 0.0, 1.2),
                    HardeningLevelSpec(2, 0.5, 1.0),
                ]
            )

    def test_empty_plan_rejected(self):
        with pytest.raises(ModelError):
            SelectiveHardeningPlan([])

    def test_unknown_level_rejected(self):
        plan = SelectiveHardeningPlan.linear(3)
        with pytest.raises(ModelError):
            plan.spec(4)

    def test_linear_plan_shape(self):
        plan = SelectiveHardeningPlan.linear(
            5, max_hardened_fraction=0.8, max_slowdown_percent=25.0
        )
        assert plan.levels == [1, 2, 3, 4, 5]
        assert plan.spec(1).hardened_fraction == 0.0
        assert plan.spec(5).hardened_fraction == pytest.approx(0.8)
        assert plan.spec(1).slowdown_factor == 1.0
        assert plan.spec(5).slowdown_factor == pytest.approx(1.25)

    def test_single_level_plan(self):
        plan = SelectiveHardeningPlan.linear(1)
        assert plan.spec(1).hardened_fraction == 0.0
        assert plan.spec(1).slowdown_factor == 1.0


class TestApplySelectiveHardening:
    def test_higher_level_is_more_reliable_and_slower(self, processor):
        plan = SelectiveHardeningPlan.linear(5, max_slowdown_percent=50.0)
        level1 = apply_selective_hardening(processor, plan, 1)
        level5 = apply_selective_hardening(processor, plan, 5)
        assert level5.failure_probability(10.0) < level1.failure_probability(10.0)
        assert level5.clock_mhz < level1.clock_mhz

    def test_level1_is_the_baseline(self, processor):
        plan = SelectiveHardeningPlan.linear(3)
        level1 = apply_selective_hardening(processor, plan, 1)
        assert level1.error_probability_per_cycle() == pytest.approx(
            processor.error_probability_per_cycle()
        )
        assert level1.clock_mhz == processor.clock_mhz

    def test_failure_probability_monotone_over_levels(self, processor):
        plan = SelectiveHardeningPlan.linear(5)
        probabilities = [
            apply_selective_hardening(processor, plan, level).failure_probability(5.0)
            for level in plan.levels
        ]
        assert probabilities == sorted(probabilities, reverse=True)
