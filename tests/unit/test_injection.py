"""Unit tests for the Monte-Carlo fault-injection campaign."""

from __future__ import annotations

import pytest

from repro.core.application import Application, Process
from repro.core.architecture import linear_cost_node_type
from repro.core.exceptions import ModelError
from repro.faults.hardening import SelectiveHardeningPlan
from repro.faults.injection import FaultInjectionCampaign, InjectionResult
from repro.faults.processor import ProcessorModel


@pytest.fixture
def processor() -> ProcessorModel:
    # Deliberately aggressive error rate so campaigns see plenty of failures.
    return ProcessorModel(
        name="cpu",
        flip_flops=100_000,
        upset_rate_per_ff_cycle=1e-11,
        clock_mhz=10.0,
        architectural_derating=0.5,
    )


class TestInjectionResult:
    def test_failure_probability(self):
        result = InjectionResult(runs=1000, failures=25)
        assert result.failure_probability == pytest.approx(0.025)

    def test_zero_runs(self):
        result = InjectionResult(runs=0, failures=0)
        assert result.failure_probability == 0.0
        assert result.confidence_interval() == (0.0, 1.0)

    def test_confidence_interval_brackets_estimate(self):
        result = InjectionResult(runs=10_000, failures=100)
        low, high = result.confidence_interval()
        assert low <= result.failure_probability <= high
        assert 0.0 <= low and high <= 1.0


class TestFaultInjectionCampaign:
    def test_invalid_runs_rejected(self):
        with pytest.raises(ModelError):
            FaultInjectionCampaign(runs=0)

    def test_reproducible_with_seed(self, processor):
        first = FaultInjectionCampaign(runs=2000, seed=7).inject(processor, 10.0)
        second = FaultInjectionCampaign(runs=2000, seed=7).inject(processor, 10.0)
        assert first.failures == second.failures

    def test_estimate_close_to_analytic_value(self, processor):
        campaign = FaultInjectionCampaign(runs=20_000, seed=42)
        estimate = campaign.inject(processor, 10.0)
        analytic = processor.failure_probability(10.0)
        low, high = estimate.confidence_interval(z=3.5)
        assert low <= analytic <= high

    def test_zero_rate_processor_never_fails(self):
        processor = ProcessorModel(
            name="safe", flip_flops=10, upset_rate_per_ff_cycle=0.0
        )
        estimate = FaultInjectionCampaign(runs=100).inject(processor, 10.0)
        assert estimate.failures == 0

    def test_invalid_wcet_rejected(self, processor):
        with pytest.raises(ValueError):
            FaultInjectionCampaign(runs=10).inject(processor, 0.0)


class TestProfileFromInjection:
    def _application(self) -> Application:
        application = Application("app", deadline=100.0, reliability_goal=0.99999)
        graph = application.new_graph("G")
        graph.add_process(Process("P1", nominal_wcet=5.0))
        graph.add_process(Process("P2", nominal_wcet=10.0))
        return application

    def test_profile_covers_all_levels(self, processor):
        application = self._application()
        node_types = [linear_cost_node_type("N1", 2.0, levels=3)]
        plan = SelectiveHardeningPlan.linear(3, max_slowdown_percent=30.0)
        campaign = FaultInjectionCampaign(runs=500, seed=1)
        profile = campaign.profile_application(
            application, node_types, {"N1": processor}, plan
        )
        assert len(profile) == 2 * 3
        profile.validate_against(application, node_types)

    def test_wcet_grows_with_hardening_level(self, processor):
        application = self._application()
        node_types = [linear_cost_node_type("N1", 2.0, levels=3)]
        plan = SelectiveHardeningPlan.linear(3, max_slowdown_percent=30.0)
        campaign = FaultInjectionCampaign(runs=200, seed=1)
        profile = campaign.profile_application(
            application, node_types, {"N1": processor}, plan
        )
        wcets = [profile.wcet("P1", "N1", level) for level in (1, 2, 3)]
        assert wcets == sorted(wcets)

    def test_generator_node_types_argument_is_fully_consumed(self, processor):
        # Regression: a generator argument used to be exhausted after the
        # first process, silently dropping every later process's entries.
        application = self._application()
        node_types = [linear_cost_node_type("N1", 2.0, levels=3)]
        plan = SelectiveHardeningPlan.linear(3, max_slowdown_percent=30.0)
        campaign = FaultInjectionCampaign(runs=200, seed=1)
        from_list = campaign.profile_application(
            application, node_types, {"N1": processor}, plan
        )
        from_generator = FaultInjectionCampaign(runs=200, seed=1).profile_application(
            application, (nt for nt in node_types), {"N1": processor}, plan
        )
        assert len(from_generator) == len(from_list) == 2 * 3
        assert from_generator.entries() == from_list.entries()

    def test_profile_is_independent_of_node_type_order(self, processor):
        # Each (process, node type, level) estimate draws from its own child
        # stream, so permuting the node-type library must not change any entry.
        application = self._application()
        a = linear_cost_node_type("A", 2.0, levels=2)
        b = linear_cost_node_type("B", 3.0, levels=2, speed_factor=1.2)
        models = {"A": processor, "B": processor.with_slowdown(1.1)}
        plan = SelectiveHardeningPlan.linear(2, max_slowdown_percent=30.0)
        forward = FaultInjectionCampaign(runs=300, seed=9).profile_application(
            application, [a, b], models, plan
        )
        reversed_order = FaultInjectionCampaign(runs=300, seed=9).profile_application(
            application, [b, a], models, plan
        )
        assert forward.entries() == reversed_order.entries()

    def test_adding_a_hardening_level_does_not_perturb_existing_estimates(
        self, processor
    ):
        application = self._application()
        plan3 = SelectiveHardeningPlan.linear(3, max_slowdown_percent=30.0)
        two_levels = FaultInjectionCampaign(runs=300, seed=5).profile_application(
            application,
            [linear_cost_node_type("N1", 2.0, levels=2)],
            {"N1": processor},
            plan3,
        )
        three_levels = FaultInjectionCampaign(runs=300, seed=5).profile_application(
            application,
            [linear_cost_node_type("N1", 2.0, levels=3)],
            {"N1": processor},
            plan3,
        )
        for process in ("P1", "P2"):
            for level in (1, 2):
                assert three_levels.failure_probability(
                    process, "N1", level
                ) == two_levels.failure_probability(process, "N1", level)

    def test_sequential_inject_calls_do_not_perturb_profiles(self, processor):
        # inject() draws from the campaign's shared sequential stream; the
        # per-estimate child streams must be unaffected by it.
        application = self._application()
        node_types = [linear_cost_node_type("N1", 2.0, levels=2)]
        plan = SelectiveHardeningPlan.linear(2)
        clean = FaultInjectionCampaign(runs=200, seed=3).profile_application(
            application, node_types, {"N1": processor}, plan
        )
        perturbed_campaign = FaultInjectionCampaign(runs=200, seed=3)
        perturbed_campaign.inject(processor, 5.0)  # advances the shared stream
        perturbed = perturbed_campaign.profile_application(
            application, node_types, {"N1": processor}, plan
        )
        assert clean.entries() == perturbed.entries()

    def test_missing_processor_model_rejected(self, processor):
        application = self._application()
        node_types = [linear_cost_node_type("N1", 2.0, levels=2)]
        plan = SelectiveHardeningPlan.linear(2)
        campaign = FaultInjectionCampaign(runs=10)
        with pytest.raises(ModelError):
            campaign.profile_application(application, node_types, {}, plan)

    def test_missing_wcet_rejected(self, processor):
        application = Application("app", deadline=10.0, reliability_goal=0.999)
        application.new_graph("G").add_process(Process("P1"))
        node_types = [linear_cost_node_type("N1", 2.0, levels=2)]
        plan = SelectiveHardeningPlan.linear(2)
        with pytest.raises(ModelError):
            FaultInjectionCampaign(runs=10).profile_application(
                application, node_types, {"N1": processor}, plan
            )
