"""Unit tests for the Monte-Carlo fault-injection campaign."""

from __future__ import annotations

import pytest

from repro.core.application import Application, Process
from repro.core.architecture import linear_cost_node_type
from repro.core.exceptions import ModelError
from repro.faults.hardening import SelectiveHardeningPlan
from repro.faults.injection import FaultInjectionCampaign, InjectionResult
from repro.faults.processor import ProcessorModel


@pytest.fixture
def processor() -> ProcessorModel:
    # Deliberately aggressive error rate so campaigns see plenty of failures.
    return ProcessorModel(
        name="cpu",
        flip_flops=100_000,
        upset_rate_per_ff_cycle=1e-11,
        clock_mhz=10.0,
        architectural_derating=0.5,
    )


class TestInjectionResult:
    def test_failure_probability(self):
        result = InjectionResult(runs=1000, failures=25)
        assert result.failure_probability == pytest.approx(0.025)

    def test_zero_runs(self):
        result = InjectionResult(runs=0, failures=0)
        assert result.failure_probability == 0.0
        assert result.confidence_interval() == (0.0, 1.0)

    def test_confidence_interval_brackets_estimate(self):
        result = InjectionResult(runs=10_000, failures=100)
        low, high = result.confidence_interval()
        assert low <= result.failure_probability <= high
        assert 0.0 <= low and high <= 1.0


class TestFaultInjectionCampaign:
    def test_invalid_runs_rejected(self):
        with pytest.raises(ModelError):
            FaultInjectionCampaign(runs=0)

    def test_reproducible_with_seed(self, processor):
        first = FaultInjectionCampaign(runs=2000, seed=7).inject(processor, 10.0)
        second = FaultInjectionCampaign(runs=2000, seed=7).inject(processor, 10.0)
        assert first.failures == second.failures

    def test_estimate_close_to_analytic_value(self, processor):
        campaign = FaultInjectionCampaign(runs=20_000, seed=42)
        estimate = campaign.inject(processor, 10.0)
        analytic = processor.failure_probability(10.0)
        low, high = estimate.confidence_interval(z=3.5)
        assert low <= analytic <= high

    def test_zero_rate_processor_never_fails(self):
        processor = ProcessorModel(
            name="safe", flip_flops=10, upset_rate_per_ff_cycle=0.0
        )
        estimate = FaultInjectionCampaign(runs=100).inject(processor, 10.0)
        assert estimate.failures == 0

    def test_invalid_wcet_rejected(self, processor):
        with pytest.raises(ValueError):
            FaultInjectionCampaign(runs=10).inject(processor, 0.0)


class TestProfileFromInjection:
    def _application(self) -> Application:
        application = Application("app", deadline=100.0, reliability_goal=0.99999)
        graph = application.new_graph("G")
        graph.add_process(Process("P1", nominal_wcet=5.0))
        graph.add_process(Process("P2", nominal_wcet=10.0))
        return application

    def test_profile_covers_all_levels(self, processor):
        application = self._application()
        node_types = [linear_cost_node_type("N1", 2.0, levels=3)]
        plan = SelectiveHardeningPlan.linear(3, max_slowdown_percent=30.0)
        campaign = FaultInjectionCampaign(runs=500, seed=1)
        profile = campaign.profile_application(
            application, node_types, {"N1": processor}, plan
        )
        assert len(profile) == 2 * 3
        profile.validate_against(application, node_types)

    def test_wcet_grows_with_hardening_level(self, processor):
        application = self._application()
        node_types = [linear_cost_node_type("N1", 2.0, levels=3)]
        plan = SelectiveHardeningPlan.linear(3, max_slowdown_percent=30.0)
        campaign = FaultInjectionCampaign(runs=200, seed=1)
        profile = campaign.profile_application(
            application, node_types, {"N1": processor}, plan
        )
        wcets = [profile.wcet("P1", "N1", level) for level in (1, 2, 3)]
        assert wcets == sorted(wcets)

    def test_missing_processor_model_rejected(self, processor):
        application = self._application()
        node_types = [linear_cost_node_type("N1", 2.0, levels=2)]
        plan = SelectiveHardeningPlan.linear(2)
        campaign = FaultInjectionCampaign(runs=10)
        with pytest.raises(ModelError):
            campaign.profile_application(application, node_types, {}, plan)

    def test_missing_wcet_rejected(self, processor):
        application = Application("app", deadline=10.0, reliability_goal=0.999)
        application.new_graph("G").add_process(Process("P1"))
        node_types = [linear_cost_node_type("N1", 2.0, levels=2)]
        plan = SelectiveHardeningPlan.linear(2)
        with pytest.raises(ModelError):
            FaultInjectionCampaign(runs=10).profile_application(
                application, node_types, {"N1": processor}, plan
            )
