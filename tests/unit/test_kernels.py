"""Kernel registry behaviour: selection precedence, errors, known values."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ModelError
from repro.kernels import (
    AUTO,
    KERNEL_ENV_VAR,
    ArrayKernel,
    ReferenceKernel,
    SFPKernel,
    active_kernel,
    get_kernel,
    kernel_names,
    resolve_kernel,
    set_default_kernel,
)
from repro.kernels import registry as registry_module


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Each test starts with no process default and no env override."""
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    set_default_kernel(None)
    yield
    set_default_kernel(None)


def test_both_builtin_backends_registered():
    names = kernel_names()
    assert "reference" in names
    assert "array" in names


def test_auto_prefers_the_array_backend():
    # array has the higher priority and is always available (numpy optional).
    assert kernel_names(available_only=True)[0] == "array"
    assert isinstance(get_kernel(AUTO), ArrayKernel)
    assert isinstance(active_kernel(), ArrayKernel)


def test_get_kernel_returns_singletons():
    assert get_kernel("array") is get_kernel("array")
    assert get_kernel("reference") is get_kernel("reference")


def test_unknown_kernel_is_a_model_error():
    with pytest.raises(ModelError, match="Unknown SFP kernel"):
        get_kernel("simd-on-a-toaster")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
    assert isinstance(active_kernel(), ReferenceKernel)


def test_set_default_kernel_overrides_env(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
    picked = set_default_kernel("array")
    assert isinstance(picked, ArrayKernel)
    assert isinstance(active_kernel(), ArrayKernel)
    set_default_kernel(None)
    assert isinstance(active_kernel(), ReferenceKernel)


def test_set_default_kernel_validates_before_committing(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
    with pytest.raises(ModelError):
        set_default_kernel("no-such-backend")
    # The failed call must not have clobbered the selection.
    assert isinstance(active_kernel(), ReferenceKernel)


def test_resolve_kernel_accepts_instance_name_and_none():
    instance = ArrayKernel()
    assert resolve_kernel(instance) is instance
    assert isinstance(resolve_kernel("reference"), ReferenceKernel)
    assert isinstance(resolve_kernel(None), SFPKernel)


def test_register_rejects_duplicate_names():
    class Impostor(SFPKernel):
        name = "reference"

    with pytest.raises(ModelError, match="already registered"):
        registry_module.register_kernel(Impostor)


def test_register_rejects_anonymous_and_auto_names():
    class Nameless(SFPKernel):
        name = ""

    class TakesAuto(SFPKernel):
        name = AUTO

    with pytest.raises(ModelError):
        registry_module.register_kernel(Nameless)
    with pytest.raises(ModelError):
        registry_module.register_kernel(TakesAuto)


def test_unavailable_backend_skipped_by_auto_and_rejected_explicitly(monkeypatch):
    class Phantom(SFPKernel):
        name = "phantom-test-backend"
        priority = 10_000  # would win auto selection if it were available

        @classmethod
        def is_available(cls):
            return False

    monkeypatch.setitem(registry_module._KERNEL_CLASSES, Phantom.name, Phantom)
    assert Phantom.name not in kernel_names(available_only=True)
    assert get_kernel(AUTO).name != Phantom.name
    with pytest.raises(ModelError, match="not available"):
        get_kernel(Phantom.name)


# ----------------------------------------------------------------------
# Appendix A.2 worked values, per backend — small but absolute anchors.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["reference", "array"])
def test_appendix_a2_anchor_values(name):
    """The hand-computed SFP chain of the paper's Appendix A.2.

    Same inputs as ``tests/integration/test_appendix_sfp.py`` drives through
    the analysis layer; here each backend computes the primitives directly.
    """
    kernel = get_kernel(name)
    probabilities = [1.2e-5, 1.3e-5, 1.4e-5]
    # Exact decimal-grid values produced by the reference chain; pinned as
    # literals so a drifting backend fails loudly with the observed value.
    assert kernel.probability_no_fault(probabilities) == 0.9999610005
    assert kernel.probability_exceeds(probabilities, 0) == 3.89995e-05
    exceeds_one = kernel.probability_exceeds(probabilities, 1)
    assert exceeds_one == 1.03e-09
    union = kernel.system_failure([exceeds_one, exceeds_one])
    assert union >= exceeds_one
