"""Kernel registry behaviour: selection precedence, errors, known values."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ModelError
from repro.kernels import (
    AUTO,
    KERNEL_ENV_VAR,
    ArrayKernel,
    ReferenceKernel,
    SFPKernel,
    active_kernel,
    get_kernel,
    kernel_names,
    resolve_kernel,
    set_default_kernel,
)
from repro.kernels import registry as registry_module

# Several tests exercise the deprecated ``set_default_*`` shims on purpose;
# their DeprecationWarnings are expected (emission itself is covered by
# tests/unit/test_deprecation_shims.py).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Each test starts with no process default and no env override.

    Restoration of the pre-test selection is handled by the suite-wide
    ``_kernel_selection_guard`` autouse fixture in ``tests/conftest.py``.
    """
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    registry_module.SFP_KERNELS.set_default(None)
    yield


def test_both_builtin_backends_registered():
    names = kernel_names()
    assert "reference" in names
    assert "array" in names


def test_auto_prefers_the_array_backend():
    # array has the higher priority and is always available (numpy optional).
    assert kernel_names(available_only=True)[0] == "array"
    assert isinstance(get_kernel(AUTO), ArrayKernel)
    assert isinstance(active_kernel(), ArrayKernel)


def test_get_kernel_returns_singletons():
    assert get_kernel("array") is get_kernel("array")
    assert get_kernel("reference") is get_kernel("reference")


def test_unknown_kernel_is_a_model_error():
    with pytest.raises(ModelError, match="Unknown SFP kernel"):
        get_kernel("simd-on-a-toaster")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
    assert isinstance(active_kernel(), ReferenceKernel)


def test_set_default_kernel_overrides_env(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
    picked = set_default_kernel("array")
    assert isinstance(picked, ArrayKernel)
    assert isinstance(active_kernel(), ArrayKernel)
    set_default_kernel(None)
    assert isinstance(active_kernel(), ReferenceKernel)


def test_set_default_kernel_validates_before_committing(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
    with pytest.raises(ModelError):
        set_default_kernel("no-such-backend")
    # The failed call must not have clobbered the selection.
    assert isinstance(active_kernel(), ReferenceKernel)


def test_resolve_kernel_accepts_instance_name_and_none():
    instance = ArrayKernel()
    assert resolve_kernel(instance) is instance
    assert isinstance(resolve_kernel("reference"), ReferenceKernel)
    assert isinstance(resolve_kernel(None), SFPKernel)


def test_register_rejects_duplicate_names():
    class Impostor(SFPKernel):
        name = "reference"

    with pytest.raises(ModelError, match="already registered"):
        registry_module.register_kernel(Impostor)


def test_register_rejects_anonymous_and_auto_names():
    class Nameless(SFPKernel):
        name = ""

    class TakesAuto(SFPKernel):
        name = AUTO

    with pytest.raises(ModelError):
        registry_module.register_kernel(Nameless)
    with pytest.raises(ModelError):
        registry_module.register_kernel(TakesAuto)


def test_unavailable_backend_skipped_by_auto_and_rejected_explicitly(monkeypatch):
    class Phantom(SFPKernel):
        name = "phantom-test-backend"
        priority = 10_000  # would win auto selection if it were available

        @classmethod
        def is_available(cls):
            return False

    monkeypatch.setitem(registry_module.SFP_KERNELS._classes, Phantom.name, Phantom)
    assert Phantom.name not in kernel_names(available_only=True)
    assert get_kernel(AUTO).name != Phantom.name
    with pytest.raises(ModelError, match="not available"):
        get_kernel(Phantom.name)


# ----------------------------------------------------------------------
# Appendix A.2 worked values, per backend — small but absolute anchors.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["reference", "array"])
def test_appendix_a2_anchor_values(name):
    """The hand-computed SFP chain of the paper's Appendix A.2.

    Same inputs as ``tests/integration/test_appendix_sfp.py`` drives through
    the analysis layer; here each backend computes the primitives directly.
    """
    kernel = get_kernel(name)
    probabilities = [1.2e-5, 1.3e-5, 1.4e-5]
    # Exact decimal-grid values produced by the reference chain; pinned as
    # literals so a drifting backend fails loudly with the observed value.
    assert kernel.probability_no_fault(probabilities) == 0.9999610005
    assert kernel.probability_exceeds(probabilities, 0) == 3.89995e-05
    exceeds_one = kernel.probability_exceeds(probabilities, 1)
    assert exceeds_one == 1.03e-09
    union = kernel.system_failure([exceeds_one, exceeds_one])
    assert union >= exceeds_one


# ----------------------------------------------------------------------
# Scheduler kernel family: same registry machinery, ``sched`` infix.
# ----------------------------------------------------------------------
from repro.comm.bus import Bus, SimpleBus  # noqa: E402
from repro.kernels import (  # noqa: E402
    SCHED_KERNEL_ENV_VAR,
    FlatSchedulerKernel,
    ReferenceSchedulerKernel,
    SchedulerKernel,
    active_sched_kernel,
    get_sched_kernel,
    resolve_sched_kernel,
    sched_kernel_names,
    set_default_sched_kernel,
)


@pytest.fixture(autouse=True)
def _clean_sched_selection(monkeypatch):
    """Each test starts with no scheduler default and no env override."""
    monkeypatch.delenv(SCHED_KERNEL_ENV_VAR, raising=False)
    registry_module.SCHED_KERNELS.set_default(None)
    yield


def test_scheduler_backends_registered():
    names = sched_kernel_names()
    assert "reference" in names
    assert "flat" in names


def test_auto_prefers_the_flat_scheduler_backend():
    assert sched_kernel_names(available_only=True)[0] == "flat"
    assert isinstance(get_sched_kernel(AUTO), FlatSchedulerKernel)
    assert isinstance(active_sched_kernel(), FlatSchedulerKernel)


def test_sched_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(SCHED_KERNEL_ENV_VAR, "reference")
    assert isinstance(active_sched_kernel(), ReferenceSchedulerKernel)


def test_set_default_sched_kernel_overrides_env(monkeypatch):
    monkeypatch.setenv(SCHED_KERNEL_ENV_VAR, "reference")
    picked = set_default_sched_kernel("flat")
    assert isinstance(picked, FlatSchedulerKernel)
    assert isinstance(active_sched_kernel(), FlatSchedulerKernel)
    set_default_sched_kernel(None)
    assert isinstance(active_sched_kernel(), ReferenceSchedulerKernel)


def test_unknown_sched_kernel_names_its_family():
    with pytest.raises(ModelError, match="Unknown scheduler kernel"):
        get_sched_kernel("gpu-on-a-toaster")


def test_families_do_not_share_a_namespace():
    # "array" is an SFP kernel, "flat" a scheduler kernel; neither resolves
    # in the other family even though both registries hold a "reference".
    with pytest.raises(ModelError):
        get_sched_kernel("array")
    with pytest.raises(ModelError):
        get_kernel("flat")
    assert type(get_kernel("reference")) is ReferenceKernel
    assert type(get_sched_kernel("reference")) is ReferenceSchedulerKernel


def test_resolve_sched_kernel_accepts_instance_name_and_none():
    instance = FlatSchedulerKernel()
    assert resolve_sched_kernel(instance) is instance
    assert isinstance(resolve_sched_kernel("reference"), ReferenceSchedulerKernel)
    assert isinstance(resolve_sched_kernel(None), SchedulerKernel)


def test_sched_register_rejects_duplicate_names():
    class Impostor(SchedulerKernel):
        name = "reference"

    with pytest.raises(ModelError, match="already registered"):
        registry_module.register_sched_kernel(Impostor)


def test_flat_kernel_falls_back_to_reference_for_unknown_bus():
    """A Bus subclass with a custom policy must get the reference path."""

    class EveryOtherSlotBus(SimpleBus):
        """Doubles every window's start — not reproducible from flat tables."""

        def _find_window(self, sender_node, earliest_start, duration):
            return 2.0 * super()._find_window(sender_node, earliest_start, duration)

    from tests.conftest import build_diamond_application, uniform_profile_for
    from repro.core.architecture import Architecture, HVersion, Node, NodeType
    from repro.core.mapping_model import ProcessMapping
    from repro.scheduling.list_scheduler import ListScheduler

    application = build_diamond_application(message_time=2.0)
    node_types = [
        NodeType("TA", [HVersion(1, 1.0)]),
        NodeType("TB", [HVersion(1, 1.0)]),
    ]
    profile = uniform_profile_for(application, node_types)
    architecture = Architecture(
        [Node("NA", node_types[0]), Node("NB", node_types[1])]
    )
    mapping = ProcessMapping({"A": "NA", "B": "NB", "C": "NA", "D": "NB"})

    flat = ListScheduler(bus=EveryOtherSlotBus(), kernel="flat").schedule(
        application, architecture, mapping, profile
    )
    reference = ListScheduler(bus=EveryOtherSlotBus(), kernel="reference").schedule(
        application, architecture, mapping, profile
    )
    assert flat == reference
    # The custom policy actually fired (windows were doubled), so the flat
    # backend cannot have used its own SimpleBus gap search.
    assert flat.message_entry("mAB").start == 2.0 * 10.0


def test_flat_kernel_recompiles_after_in_place_profile_and_overhead_edits():
    """In-place WCET/mu edits must invalidate the flat kernel's compiled tables.

    Regression: the compiled cache was guarded by (structure, profile)
    identity only, so overwriting a profile entry or a recovery overhead
    replayed stale snapshot floats while the reference backend read the live
    objects.
    """
    from tests.conftest import build_diamond_application, uniform_profile_for
    from repro.core.architecture import Architecture, HVersion, Node, NodeType
    from repro.core.mapping_model import ProcessMapping
    from repro.scheduling.list_scheduler import ListScheduler

    application = build_diamond_application(message_time=2.0)
    node_types = [
        NodeType("TA", [HVersion(1, 1.0)]),
        NodeType("TB", [HVersion(1, 1.0)]),
    ]
    profile = uniform_profile_for(application, node_types)
    architecture = Architecture(
        [Node("NA", node_types[0]), Node("NB", node_types[1])]
    )
    mapping = ProcessMapping({"A": "NA", "B": "NB", "C": "NA", "D": "NB"})
    budgets = {"NA": 1, "NB": 1}

    flat = ListScheduler(kernel="flat")
    reference = ListScheduler(kernel="reference")
    assert flat.schedule(
        application, architecture, mapping, profile, budgets
    ) == reference.schedule(application, architecture, mapping, profile, budgets)

    # Overwrite one WCET in place: A now takes 30 ms instead of 10 ms on TA.
    profile.add_entry("A", "TA", 1, 30.0, 1e-6)
    after_wcet = flat.schedule(application, architecture, mapping, profile, budgets)
    assert after_wcet == reference.schedule(
        application, architecture, mapping, profile, budgets
    )
    assert after_wcet.entry("A").finish == 30.0

    # Edit a recovery overhead in place: slack must follow the live value.
    application.set_recovery_overhead("A", 50.0)
    after_mu = flat.schedule(application, architecture, mapping, profile, budgets)
    assert after_mu == reference.schedule(
        application, architecture, mapping, profile, budgets
    )
    assert after_mu.node_recovery_slack["NA"] == 30.0 + 50.0  # budget 1 × (t + mu)


# ----------------------------------------------------------------------
# Scoped selection: use_kernel
# ----------------------------------------------------------------------
from repro.kernels import use_kernel  # noqa: E402


class TestUseKernel:
    def test_scopes_both_families_and_restores(self):
        with use_kernel(sfp="reference", sched="reference") as (sfp, sched):
            assert isinstance(sfp, ReferenceKernel)
            assert isinstance(sched, ReferenceSchedulerKernel)
            assert isinstance(active_kernel(), ReferenceKernel)
            assert isinstance(active_sched_kernel(), ReferenceSchedulerKernel)
        assert isinstance(active_kernel(), ArrayKernel)
        assert isinstance(active_sched_kernel(), FlatSchedulerKernel)

    def test_none_leaves_ambient_selection_untouched(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        with use_kernel(sched="flat") as (sfp, sched):
            assert isinstance(sfp, ReferenceKernel)  # env still decides SFP
            assert isinstance(sched, FlatSchedulerKernel)

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with use_kernel(sfp="reference", sched="reference"):
                assert isinstance(active_kernel(), ReferenceKernel)
                raise RuntimeError("boom")
        assert isinstance(active_kernel(), ArrayKernel)
        assert isinstance(active_sched_kernel(), FlatSchedulerKernel)

    def test_invalid_name_leaves_state_untouched(self):
        with pytest.raises(ModelError):
            with use_kernel(sfp="no-such-backend"):
                pytest.fail("the scope body must not run")  # pragma: no cover
        assert isinstance(active_kernel(), ArrayKernel)

    def test_accepts_registry_singleton_instances(self):
        with use_kernel(sfp=get_kernel("reference")) as (sfp, _):
            assert isinstance(sfp, ReferenceKernel)

    def test_rejects_foreign_instances(self):
        # A separately constructed object would be silently swapped for the
        # registry singleton of the same name; that must fail instead.
        with pytest.raises(ModelError, match="registry-singleton"):
            with use_kernel(sfp=ReferenceKernel()):
                pytest.fail("the scope body must not run")  # pragma: no cover
        assert isinstance(active_kernel(), ArrayKernel)

    def test_nested_scopes_unwind_in_order(self):
        with use_kernel(sfp="reference"):
            with use_kernel(sfp="array"):
                assert isinstance(active_kernel(), ArrayKernel)
            assert isinstance(active_kernel(), ReferenceKernel)
        assert isinstance(active_kernel(), ArrayKernel)
