"""Fixture tests for the ``repro.lint`` rules, suppressions and baseline.

Each rule gets at least one known-bad fixture (the rule must fire, on the
right line/symbol) and one known-good fixture (the rule must stay quiet).
The fixtures are in-memory modules loaded through
:meth:`repro.lint.project.Project.from_sources`, so the tests pin the *rule
semantics*, independent of the state of the real tree.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import (
    RULES,
    Violation,
    load_baseline,
    match_baseline,
    run_lint,
    save_baseline,
)
from repro.lint.baseline import BaselineError, entry_for
from repro.lint.model import is_suppressed, suppressed_rules_by_line
from repro.lint.project import Project


def project_from(**sources: str) -> Project:
    return Project.from_sources(
        {name: textwrap.dedent(source) for name, source in sources.items()}
    )


def findings(project: Project, rule_id: str):
    return list(RULES.get(rule_id).check(project))


# ----------------------------------------------------------------------
# R001 — fingerprint purity
# ----------------------------------------------------------------------
class TestFingerprintPurity:
    def test_builtin_hash_on_key_path_fires(self):
        project = project_from(
            **{
                "repro.engine.fingerprint": """
                def application_fingerprint(app):
                    return hash((app.name, app.deadline))
                """
            }
        )
        (violation,) = findings(project, "R001")
        assert violation.symbol == "repro.engine.fingerprint.application_fingerprint"
        assert "hash()" in violation.message
        assert violation.line == 3

    def test_impurity_reached_through_helper_module_fires(self):
        # The closure must follow calls across modules: the root delegates to
        # a helper whose body uses id().
        project = project_from(
            **{
                "repro.engine.fingerprint": """
                from repro.engine.helper import canonical

                def context_fingerprint(app):
                    return canonical(app)
                """,
                "repro.engine.helper": """
                def canonical(app):
                    return id(app)
                """,
            }
        )
        (violation,) = findings(project, "R001")
        assert violation.module == "repro.engine.helper"
        assert "id()" in violation.message

    def test_set_iteration_on_key_path_fires(self):
        project = project_from(
            **{
                "repro.engine.fingerprint": """
                def profile_fingerprint(entries):
                    return tuple(e for e in set(entries))
                """
            }
        )
        (violation,) = findings(project, "R001")
        assert "set has hash-dependent order" in violation.message

    def test_unsorted_dict_view_fires_and_sorted_is_quiet(self):
        bad = project_from(
            **{
                "repro.engine.fingerprint": """
                def profile_fingerprint(table):
                    return tuple(k for k in table.items())
                """
            }
        )
        good = project_from(
            **{
                "repro.engine.fingerprint": """
                def profile_fingerprint(table):
                    return tuple(sorted(k for k in table.items()))
                """
            }
        )
        assert len(findings(bad, "R001")) == 1
        assert findings(good, "R001") == []

    def test_impurity_off_the_key_path_is_quiet(self):
        # hash() in an unrelated module that the key roots never call.
        project = project_from(
            **{
                "repro.engine.fingerprint": """
                def application_fingerprint(app):
                    return (app.name, app.deadline)
                """,
                "repro.scheduling.schedule": """
                class Schedule:
                    def __hash__(self):
                        return hash(self.name)
                """,
            }
        )
        assert findings(project, "R001") == []

    def test_store_key_methods_are_roots(self):
        project = project_from(
            **{
                "repro.engine.store": """
                class DesignPointStore:
                    def context_key(self, engine):
                        return repr(engine.context)
                """
            }
        )
        (violation,) = findings(project, "R001")
        assert violation.symbol == "repro.engine.store.DesignPointStore.context_key"
        assert "repr()" in violation.message


# ----------------------------------------------------------------------
# R002 — kernel-contract conformance
# ----------------------------------------------------------------------
_BASE = """
class SFPKernel:
    name = ""
    description = ""
    priority = 0

    def probability_exceeds(self, probabilities, reexecutions, threshold):
        raise NotImplementedError
"""

#: Family base with the (non-abstract) batch entry point: a total scalar
#: fallback that vectorizing backends override with an identical signature.
_BATCH_BASE = """
class SFPKernel:
    name = ""
    description = ""
    priority = 0
    supports_batch = False

    def probability_exceeds(self, probabilities, reexecutions, threshold):
        raise NotImplementedError

    def batch_probability_exceeds(self, blocks, reexecutions, threshold):
        return [
            self.probability_exceeds(probabilities, budget, threshold)
            for probabilities, budget in zip(blocks, reexecutions)
        ]
"""


class TestKernelContract:
    def test_conforming_backend_is_quiet(self):
        project = project_from(
            **{
                "repro.kernels.base": _BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class GoodKernel(SFPKernel):
                    name = "good"
                    description = "conforming fixture backend"
                    priority = 10

                    def probability_exceeds(self, probabilities, reexecutions, threshold):
                        return 0.0
                """,
            }
        )
        assert findings(project, "R002") == []

    def test_missing_method_fires(self):
        project = project_from(
            **{
                "repro.kernels.base": _BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class LazyKernel(SFPKernel):
                    name = "lazy"
                    description = "misses the abstract method"
                    priority = 10
                """,
            }
        )
        (violation,) = findings(project, "R002")
        assert "does not implement abstract method probability_exceeds()" in violation.message

    def test_signature_drift_fires(self):
        project = project_from(
            **{
                "repro.kernels.base": _BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class DriftedKernel(SFPKernel):
                    name = "drifted"
                    description = "renamed a positional argument"
                    priority = 10

                    def probability_exceeds(self, probs, reexecutions, threshold):
                        return 0.0
                """,
            }
        )
        (violation,) = findings(project, "R002")
        assert "signature drifts" in violation.message

    def test_mutable_class_state_fires(self):
        project = project_from(
            **{
                "repro.kernels.base": _BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class SharedStateKernel(SFPKernel):
                    name = "shared"
                    description = "class-level scratch buffer"
                    priority = 10
                    _scratch = []

                    def probability_exceeds(self, probabilities, reexecutions, threshold):
                        return 0.0
                """,
            }
        )
        (violation,) = findings(project, "R002")
        assert "mutable class state" in violation.message

    def test_missing_registry_attr_fires(self):
        project = project_from(
            **{
                "repro.kernels.base": _BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class AnonymousKernel(SFPKernel):
                    name = "anonymous"
                    description = "priority missing"

                    def probability_exceeds(self, probabilities, reexecutions, threshold):
                        return 0.0
                """,
            }
        )
        (violation,) = findings(project, "R002")
        assert "registry attribute 'priority'" in violation.message

    def test_stacked_backend_inheriting_implementation_is_quiet(self):
        """A backend stacked on another backend inherits the contract
        implementation; only the registry attributes must be its own."""
        project = project_from(
            **{
                "repro.kernels.base": _BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class GoodKernel(SFPKernel):
                    name = "good"
                    description = "conforming fixture backend"
                    priority = 10

                    def probability_exceeds(self, probabilities, reexecutions, threshold):
                        return 0.0

                class StackedKernel(GoodKernel):
                    name = "stacked"
                    description = "inherits the implementation from good"
                    priority = 5
                """,
            }
        )
        assert findings(project, "R002") == []

    def test_transitive_backend_missing_chain_implementation_fires(self):
        """A grandchild whose whole chain lacks the method is caught — the
        direct-bases-only scan used to exempt exactly this shape."""
        project = project_from(
            **{
                "repro.kernels.base": _BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class MiddleKernel(SFPKernel):
                    name = "middle"
                    description = "no implementation anywhere"
                    priority = 10

                class LeafKernel(MiddleKernel):
                    name = "leaf"
                    description = "inherits nothing useful"
                    priority = 5
                """,
            }
        )
        violations = findings(project, "R002")
        assert len(violations) == 2
        assert all(
            "does not implement abstract method probability_exceeds()"
            in violation.message
            for violation in violations
        )

    def test_inherited_defect_is_reported_once_on_its_owner(self):
        """A drifted override is one violation, on the class that wrote it —
        descendants inheriting it are not re-flagged."""
        project = project_from(
            **{
                "repro.kernels.base": _BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class DriftedKernel(SFPKernel):
                    name = "drifted"
                    description = "renamed a positional argument"
                    priority = 10

                    def probability_exceeds(self, probs, reexecutions, threshold):
                        return 0.0

                class HeirKernel(DriftedKernel):
                    name = "heir"
                    description = "inherits the drifted override"
                    priority = 5
                """,
            }
        )
        (violation,) = findings(project, "R002")
        assert violation.symbol == "repro.kernels.custom.DriftedKernel"
        assert "signature drifts" in violation.message

    def test_conforming_batch_backend_is_quiet(self):
        project = project_from(
            **{
                "repro.kernels.base": _BATCH_BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class VectorKernel(SFPKernel):
                    name = "vector"
                    description = "specialized batch pass"
                    priority = 5
                    supports_batch = True

                    def probability_exceeds(self, probabilities, reexecutions, threshold):
                        return 0.0

                    def batch_probability_exceeds(self, blocks, reexecutions, threshold):
                        return [0.0 for _ in blocks]
                """,
            }
        )
        assert findings(project, "R002") == []

    def test_supports_batch_without_override_fires(self):
        project = project_from(
            **{
                "repro.kernels.base": _BATCH_BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class PosingKernel(SFPKernel):
                    name = "posing"
                    description = "claims batching, runs the fallback"
                    priority = 5
                    supports_batch = True

                    def probability_exceeds(self, probabilities, reexecutions, threshold):
                        return 0.0
                """,
            }
        )
        (violation,) = findings(project, "R002")
        assert "supports_batch = True" in violation.message
        assert "scalar fallback batch_probability_exceeds()" in violation.message

    def test_batch_override_signature_drift_fires(self):
        project = project_from(
            **{
                "repro.kernels.base": _BATCH_BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class SkewedKernel(SFPKernel):
                    name = "skewed"
                    description = "reordered the batch arguments"
                    priority = 5
                    supports_batch = True

                    def probability_exceeds(self, probabilities, reexecutions, threshold):
                        return 0.0

                    def batch_probability_exceeds(self, reexecutions, blocks, threshold):
                        return [0.0 for _ in blocks]
                """,
            }
        )
        (violation,) = findings(project, "R002")
        assert "batch_probability_exceeds() signature drifts" in violation.message

    def test_batch_override_raising_not_implemented_fires(self):
        project = project_from(
            **{
                "repro.kernels.base": _BATCH_BASE,
                "repro.kernels.custom": """
                from repro.kernels.base import SFPKernel

                class RefusingKernel(SFPKernel):
                    name = "refusing"
                    description = "disables the total batch fallback"
                    priority = 5

                    def probability_exceeds(self, probabilities, reexecutions, threshold):
                        return 0.0

                    def batch_probability_exceeds(self, blocks, reexecutions, threshold):
                        raise NotImplementedError
                """,
            }
        )
        (violation,) = findings(project, "R002")
        assert "the batch contract is total" in violation.message

    def test_cache_key_module_importing_kernels_fires(self):
        project = project_from(
            **{
                "repro.engine.fingerprint": """
                from repro.kernels.registry import SFP_KERNELS

                def application_fingerprint(app):
                    return (app.name, SFP_KERNELS)
                """,
                "repro.kernels.registry": """
                SFP_KERNELS = None
                """,
            }
        )
        violations = findings(project, "R002")
        assert any("kernel selection must not leak" in v.message for v in violations)

    def test_type_checking_only_import_is_quiet(self):
        project = project_from(
            **{
                "repro.engine.fingerprint": """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.kernels.registry import SFP_KERNELS

                def application_fingerprint(app):
                    return (app.name,)
                """,
                "repro.kernels.registry": """
                SFP_KERNELS = None
                """,
            }
        )
        assert findings(project, "R002") == []


# ----------------------------------------------------------------------
# R003 — structure-token safety
# ----------------------------------------------------------------------
_TASKGRAPH = """
class TaskGraph:
    def __init__(self):
        self._graph = {}
        self._messages = {}

    def add_message(self, message):
        self._messages[message.name] = message
        self._bump()
"""


class TestStructureToken:
    def test_mutation_inside_sanctioned_mutator_is_quiet(self):
        project = project_from(**{"repro.core.application": _TASKGRAPH})
        assert findings(project, "R003") == []

    def test_foreign_mutation_fires(self):
        project = project_from(
            **{
                "repro.core.application": _TASKGRAPH,
                "repro.experiments.hacks": """
                def rewire(graph, message):
                    graph._messages[message.name] = message
                """,
            }
        )
        (violation,) = findings(project, "R003")
        assert violation.module == "repro.experiments.hacks"
        assert "._messages" in violation.message.replace(" ", "")

    def test_unsanctioned_method_of_owner_fires(self):
        project = project_from(
            **{
                "repro.core.application": _TASKGRAPH
                + """
    def sneaky_edit(self, message):
        self._messages.pop(message.name)
"""
            }
        )
        (violation,) = findings(project, "R003")
        assert "mutating call .pop()" in violation.message

    def test_networkx_style_mutator_fires(self):
        project = project_from(
            **{
                "repro.scheduling.rewire": """
                def rewire(graph, a, b):
                    graph._graph.add_edge(a, b)
                """
            }
        )
        (violation,) = findings(project, "R003")
        assert "mutating call .add_edge()" in violation.message

    def test_read_access_is_quiet(self):
        project = project_from(
            **{
                "repro.scheduling.reader": """
                def processes(schedule):
                    return list(schedule._processes)
                """
            }
        )
        assert findings(project, "R003") == []


# ----------------------------------------------------------------------
# R004 — seeded RNG only
# ----------------------------------------------------------------------
class TestSeededRng:
    def test_module_level_random_fires(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                import random

                def jitter():
                    return random.random()
                """
            }
        )
        (violation,) = findings(project, "R004")
        assert "random.random()" in violation.message

    def test_numpy_global_state_fires(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                import numpy as np

                def draw(n):
                    np.random.seed(0)
                    return np.random.rand(n)
                """
            }
        )
        messages = sorted(v.message for v in findings(project, "R004"))
        assert len(messages) == 2
        assert "numpy.random.rand()" in messages[0]
        assert "numpy.random.seed()" in messages[1]

    def test_seeded_generators_are_quiet(self):
        project = project_from(
            **{
                "repro.generator.good": """
                import random
                import numpy as np

                def draw(n, seed):
                    rng = np.random.default_rng(seed)
                    local = random.Random(seed)
                    return rng.random(n), local.random()
                """
            }
        )
        assert findings(project, "R004") == []

    def test_seedless_default_rng_fires(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                import numpy as np

                def draw(n):
                    return np.random.default_rng().random(n)
                """
            }
        )
        (violation,) = findings(project, "R004")
        assert "seedless numpy.random.default_rng()" in violation.message

    def test_seedless_seed_sequence_and_bit_generator_fire(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                from numpy.random import PCG64, Generator, SeedSequence

                def streams():
                    root = SeedSequence()
                    return Generator(PCG64())
                """
            }
        )
        messages = sorted(v.message for v in findings(project, "R004"))
        assert len(messages) == 2
        assert any("SeedSequence()" in message for message in messages)
        assert any("PCG64()" in message for message in messages)

    def test_seeded_bit_generator_chain_is_quiet(self):
        project = project_from(
            **{
                "repro.generator.good": """
                from numpy.random import PCG64, Generator, SeedSequence

                def streams(seed):
                    root = SeedSequence(seed)
                    children = root.spawn(2)
                    return [Generator(PCG64(child)) for child in children]
                """
            }
        )
        assert findings(project, "R004") == []

    def test_bare_generator_without_bit_generator_fires(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                from numpy.random import Generator

                def draw():
                    return Generator()
                """
            }
        )
        (violation,) = findings(project, "R004")
        assert "bare numpy.random.Generator construction" in violation.message


# ----------------------------------------------------------------------
# R005 — Decimal/float mixing
# ----------------------------------------------------------------------
class TestDecimalFloat:
    def test_decimal_from_float_fires(self):
        project = project_from(
            **{
                "repro.utils.chain": """
                from decimal import Decimal

                def grid(x):
                    return Decimal(0.1) + Decimal(repr(x))
                """
            }
        )
        (violation,) = findings(project, "R005")
        assert "constructed from a float" in violation.message

    def test_mixed_arithmetic_fires(self):
        project = project_from(
            **{
                "repro.utils.chain": """
                from decimal import Decimal

                def shift(x):
                    d = Decimal(repr(x))
                    scale = 0.5
                    return d * scale
                """
            }
        )
        (violation,) = findings(project, "R005")
        assert "arithmetic mixes Decimal and float" in violation.message

    def test_mixed_comparison_fires(self):
        project = project_from(
            **{
                "repro.utils.chain": """
                from decimal import Decimal

                def exceeds(x, threshold):
                    d = Decimal(repr(x))
                    return d > 0.5
                """
            }
        )
        (violation,) = findings(project, "R005")
        assert "comparison mixes Decimal and float" in violation.message

    def test_pure_decimal_chain_is_quiet(self):
        project = project_from(
            **{
                "repro.utils.chain": """
                from decimal import Decimal

                def chain(x, quantum):
                    d = Decimal(repr(x))
                    q = Decimal(1).scaleb(-quantum)
                    return (d * q).quantize(q) >= Decimal(0)
                """
            }
        )
        assert findings(project, "R005") == []

    def test_module_without_decimal_is_skipped(self):
        project = project_from(
            **{
                "repro.utils.plain": """
                def blend(a, b):
                    return a * 0.5 + b * 0.5
                """
            }
        )
        assert findings(project, "R005") == []


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_directive_silences_the_line(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                import random

                def jitter():
                    return random.random()  # repro-lint: disable=R004 -- fixture
                """
            }
        )
        report = run_lint(project)
        assert report.violations == []
        assert report.suppressed_count == 1

    def test_standalone_directive_covers_next_line(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                import random

                def jitter():
                    # repro-lint: disable=R004 -- fixture
                    return random.random()
                """
            }
        )
        report = run_lint(project)
        assert report.violations == []
        assert report.suppressed_count == 1

    def test_wrong_rule_id_does_not_suppress(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                import random

                def jitter():
                    return random.random()  # repro-lint: disable=R001 -- wrong rule
                """
            }
        )
        report = run_lint(project)
        assert [v.rule for v in report.violations] == ["R004"]

    def test_disable_all_suppresses_every_rule(self):
        lines = ["x = 1  # repro-lint: disable=all"]
        suppressed = suppressed_rules_by_line(lines)
        violation = Violation(
            rule="R004", module="m", path="m.py", line=1, column=0, symbol="", message="x"
        )
        assert is_suppressed(violation, suppressed)


# ----------------------------------------------------------------------
# baseline mechanics
# ----------------------------------------------------------------------
def _violation(message: str, line: int = 1) -> Violation:
    return Violation(
        rule="R004",
        module="repro.generator.bad",
        path="repro/generator/bad.py",
        line=line,
        column=0,
        symbol="repro.generator.bad.jitter",
        message=message,
    )


class TestBaseline:
    def test_fingerprint_is_line_insensitive(self):
        assert _violation("x", line=3).fingerprint() == _violation("x", line=99).fingerprint()

    def test_match_splits_new_baselined_stale(self):
        known = _violation("known")
        fixed = _violation("fixed long ago")
        fresh = _violation("fresh")
        baseline = [entry_for(known), entry_for(fixed)]
        new, baselined, stale = match_baseline([known, fresh], baseline)
        assert new == [fresh]
        assert baselined == [known]
        assert [entry.fingerprint for entry in stale] == [entry_for(fixed).fingerprint]

    def test_multiset_matching_needs_one_entry_per_finding(self):
        duplicate = _violation("dup")
        baseline = [entry_for(duplicate)]
        new, baselined, _ = match_baseline([duplicate, duplicate], baseline)
        assert len(baselined) == 1
        assert len(new) == 1

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        violations = [_violation("b"), _violation("a")]
        assert save_baseline(path, violations) == 2
        entries = load_baseline(path)
        assert [entry.message for entry in entries] == ["a", "b"]  # sorted
        assert load_baseline(tmp_path / "missing.json") == []

    def test_rejects_foreign_layout(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({"version": 999, "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_run_lint_applies_baseline(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                import random

                def jitter():
                    return random.random()
                """
            }
        )
        first = run_lint(project)
        assert len(first.new) == 1
        second = run_lint(project, baseline=[entry_for(v) for v in first.violations])
        assert second.new == []
        assert len(second.baselined) == 1
        assert second.exit_code() == 0
        assert first.exit_code() == 1


# ----------------------------------------------------------------------
# registry / report plumbing
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_eight_rules_registered_in_order(self):
        assert RULES.ids() == [
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
        ]

    def test_rule_selection_restricts_the_run(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                import random

                def jitter():
                    return random.random()
                """
            }
        )
        report = run_lint(project, rule_ids=["R001"])
        assert report.rule_ids == ["R001"]
        assert report.violations == []

    def test_report_as_dict_marks_baselined(self):
        project = project_from(
            **{
                "repro.generator.bad": """
                import random

                def jitter():
                    return random.random()
                """
            }
        )
        first = run_lint(project)
        second = run_lint(project, baseline=[entry_for(v) for v in first.violations])
        payload = second.as_dict()
        assert payload["new_count"] == 0
        assert payload["violations"][0]["baselined"] is True


# ----------------------------------------------------------------------
# R006 — fork/pickle safety
# ----------------------------------------------------------------------
class TestForkPickle:
    def test_lambda_submitted_to_pool_fires(self):
        project = project_from(
            **{
                "repro.experiments.bad": """
                from concurrent.futures import ProcessPoolExecutor

                def sweep(values):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(lambda v: v + 1, values))
                """
            }
        )
        (violation,) = findings(project, "R006")
        assert "lambda as submitted callable" in violation.message
        assert violation.symbol == "repro.experiments.bad.sweep"

    def test_nested_function_submitted_fires(self):
        project = project_from(
            **{
                "repro.experiments.bad": """
                from concurrent.futures import ProcessPoolExecutor

                def sweep(values):
                    def task(v):
                        return v + 1
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(task, values)
                """
            }
        )
        (violation,) = findings(project, "R006")
        assert "nested function 'task'" in violation.message

    def test_open_handle_in_task_payload_fires(self):
        project = project_from(
            **{
                "repro.experiments.bad": """
                def ship(path, pool):
                    handle = open(path)
                    return pool.submit(len, handle)
                """
            }
        )
        (violation,) = findings(project, "R006")
        assert "open file handle in task payload" in violation.message

    def test_shared_engine_handle_in_payload_fires(self):
        project = project_from(
            **{
                "repro.experiments.bad": """
                from repro.engine.engine import EvaluationEngine

                def ship(app, profile, pool):
                    engine = EvaluationEngine(app, profile)
                    return pool.submit(len, (0, engine))
                """,
                "repro.engine.engine": """
                class EvaluationEngine:
                    def __init__(self, app, profile):
                        self.app = app
                """,
            }
        )
        (violation,) = findings(project, "R006")
        assert "EvaluationEngine handle in task payload" in violation.message

    def test_initargs_with_decimal_context_fires(self):
        project = project_from(
            **{
                "repro.experiments.bad": """
                import decimal
                from concurrent.futures import ProcessPoolExecutor

                def sweep(worker):
                    context = decimal.getcontext()
                    pool = ProcessPoolExecutor(
                        initializer=worker, initargs=(context,)
                    )
                    return pool
                """
            }
        )
        (violation,) = findings(project, "R006")
        assert "decimal context in initargs" in violation.message

    def test_module_level_function_and_scalar_tasks_are_quiet(self):
        project = project_from(
            **{
                "repro.experiments.good": """
                from concurrent.futures import ProcessPoolExecutor

                def _init_worker(count, seed):
                    pass

                def _task(triple):
                    index, ser, hpd = triple
                    return index

                def sweep(settings):
                    with ProcessPoolExecutor(
                        initializer=_init_worker, initargs=(4, 42)
                    ) as pool:
                        tasks = [(i, s, h) for i, (s, h) in enumerate(settings)]
                        return list(pool.map(_task, tasks))
                """
            }
        )
        assert findings(project, "R006") == []


# ----------------------------------------------------------------------
# R007 — worker shared-state isolation
# ----------------------------------------------------------------------
class TestWorkerIsolation:
    def test_task_mutating_module_global_fires(self):
        project = project_from(
            **{
                "repro.experiments.bad": """
                _CACHE = {}

                def task(value):
                    _CACHE[value] = value
                    return value

                def sweep(pool, values):
                    return list(pool.map(task, values))
                """
            }
        )
        (violation,) = findings(project, "R007")
        assert "module global '_CACHE'" in violation.message
        assert violation.symbol == "repro.experiments.bad.task"

    def test_global_statement_in_task_fires(self):
        project = project_from(
            **{
                "repro.experiments.bad": """
                _TOTAL = 0

                def task(value):
                    global _TOTAL
                    _TOTAL += value
                    return value

                def sweep(pool, values):
                    return pool.submit(task, values)
                """
            }
        )
        messages = [v.message for v in findings(project, "R007")]
        assert any("'global _TOTAL'" in message for message in messages)

    def test_task_reaching_into_memo_cache_fires(self):
        # The mutation sits one call below the entrypoint: the closure must
        # follow the helper call and the tracked MemoCache instance.
        project = project_from(
            **{
                "repro.engine.cache": """
                class MemoCache:
                    def __init__(self, name):
                        self._store = {}

                    def put(self, key, value):
                        self._store[key] = value
                """,
                "repro.experiments.bad": """
                from repro.engine.cache import MemoCache

                def _helper(value):
                    cache = MemoCache("decisions")
                    cache._store["warm"] = value
                    return cache

                def task(value):
                    return _helper(value)

                def sweep(pool, values):
                    return pool.submit(task, values)
                """,
            }
        )
        messages = [v.message for v in findings(project, "R007")]
        assert any("MemoCache state ('_store')" in message for message in messages)

    def test_guarded_class_own_write_path_is_quiet(self):
        # MemoCache.put mutates _store from worker-reachable code, but it is
        # the class's sanctioned mutator — the write path the parent owns.
        project = project_from(
            **{
                "repro.engine.cache": """
                class MemoCache:
                    def __init__(self, name):
                        self._store = {}

                    def put(self, key, value):
                        self._store[key] = value
                """,
                "repro.experiments.good": """
                from repro.engine.cache import MemoCache

                def task(value):
                    local = MemoCache("decisions")
                    local.put("key", value)
                    return value

                def sweep(pool, values):
                    return pool.submit(task, values)
                """,
            }
        )
        assert findings(project, "R007") == []

    def test_read_only_worker_state_is_quiet(self):
        # Initializer-populated module state read (not written) by the task;
        # the initializer itself is not task-reachable and may write.
        project = project_from(
            **{
                "repro.experiments.good": """
                from concurrent.futures import ProcessPoolExecutor

                _STATE = {}

                def _init_worker(count):
                    _STATE["count"] = count

                def task(value):
                    return _STATE["count"] + value

                def sweep(values):
                    with ProcessPoolExecutor(
                        initializer=_init_worker, initargs=(4,)
                    ) as pool:
                        return list(pool.map(task, values))
                """
            }
        )
        assert findings(project, "R007") == []


# ----------------------------------------------------------------------
# R008 — report JSON-serializability
# ----------------------------------------------------------------------
class TestReportJson:
    def test_set_in_runner_payload_fires(self):
        project = project_from(
            **{
                "repro.api.scenarios_bad": """
                from repro.api.registry import ScenarioOutcome, register_scenario

                @register_scenario("bad")
                def run_bad(session, params):
                    return ScenarioOutcome(payload={"levels": {1, 2, 3}})
                """
            }
        )
        messages = [v.message for v in findings(project, "R008")]
        assert any("set in a report payload" in message for message in messages)

    def test_decimal_in_runner_payload_fires(self):
        project = project_from(
            **{
                "repro.api.scenarios_bad": """
                from decimal import Decimal

                from repro.api.registry import ScenarioOutcome, register_scenario

                @register_scenario("bad")
                def run_bad(session, params):
                    payload = {"cost": Decimal("12.5")}
                    return ScenarioOutcome(payload=payload)
                """
            }
        )
        messages = [v.message for v in findings(project, "R008")]
        assert any("Decimal" in message for message in messages)

    def test_run_report_outside_api_boundary_fires(self):
        project = project_from(
            **{
                "repro.experiments.bad": """
                from repro.api.report import RunReport

                def export(results):
                    return RunReport(scenario="adhoc", config=None, results=results)
                """
            }
        )
        (violation,) = findings(project, "R008")
        assert "RunReport constructed outside the API boundary" in violation.message

    def test_outcome_without_canonicalization_fires(self):
        project = project_from(
            **{
                "repro.api.registry": """
                class ScenarioOutcome:
                    def __init__(self, payload, text=""):
                        self.payload = payload
                        self.text = text
                """
            }
        )
        (violation,) = findings(project, "R008")
        assert "must canonicalize the payload" in violation.message

    def test_canonicalized_outcome_and_native_payload_are_quiet(self):
        project = project_from(
            **{
                "repro.api.registry": """
                def canonicalize_payload(value):
                    return value

                class ScenarioOutcome:
                    def __init__(self, payload, text=""):
                        self.payload = payload

                    def __post_init__(self):
                        self.payload = canonicalize_payload(self.payload)

                def register_scenario(scenario_id):
                    def wrap(fn):
                        return fn
                    return wrap
                """,
                "repro.api.scenarios_good": """
                from repro.api.registry import ScenarioOutcome, register_scenario

                @register_scenario("good")
                def run_good(session, params):
                    acceptance = {"20": 85.0, "40": 90.0}
                    return ScenarioOutcome(payload={"acceptance": acceptance})
                """,
            }
        )
        assert findings(project, "R008") == []

    # ------------------------------------------------------------------
    # nets 4 and 5: the serve response roots
    # ------------------------------------------------------------------
    #: A conforming protocol module: both roots canonicalize, so net 5 stays
    #: quiet and fixtures can focus on the call-site checks of net 4.
    GOOD_PROTOCOL = """
    def canonicalize_payload(value):
        return value

    def json_response(payload, status=200, extra_headers=None):
        return canonicalize_payload(payload)

    def event_line(payload):
        return canonicalize_payload(payload)
    """

    def test_set_in_serve_response_payload_fires(self):
        project = project_from(
            **{
                "repro.serve.protocol": self.GOOD_PROTOCOL,
                "repro.serve.server": """
                from repro.serve.protocol import json_response

                def healthz(depths):
                    return json_response({"status": "ok", "states": {1, 2}})
                """,
            }
        )
        (violation,) = findings(project, "R008")
        assert violation.module == "repro.serve.server"
        assert "set in a report payload" in violation.message

    def test_bytes_via_named_dict_in_event_line_fires(self):
        # The payload is bound to a name first; the dict-literal binding
        # must be followed, same as for ScenarioOutcome call sites.
        project = project_from(
            **{
                "repro.serve.protocol": self.GOOD_PROTOCOL,
                "repro.serve.server": """
                from repro.serve.protocol import event_line

                def emit(writer, raw):
                    event = {"event": "job_done", "blob": bytes(raw)}
                    return event_line(event)
                """,
            }
        )
        (violation,) = findings(project, "R008")
        assert violation.symbol == "repro.serve.server.emit"
        assert "bytes" in violation.message

    def test_native_serve_payloads_are_quiet(self):
        project = project_from(
            **{
                "repro.serve.protocol": self.GOOD_PROTOCOL,
                "repro.serve.server": """
                from repro.serve.protocol import event_line, json_response

                def healthz(counts):
                    return json_response({"status": "ok", "jobs": counts})

                def emit(job_id):
                    return event_line({"event": "job_done", "id": job_id})
                """,
            }
        )
        assert findings(project, "R008") == []

    def test_serve_root_without_canonicalization_fires(self):
        # Stripping canonicalize_payload from a root reverts the serve
        # layer's only canonicalization point — net 5 pins both roots.
        project = project_from(
            **{
                "repro.serve.protocol": """
                def canonicalize_payload(value):
                    return value

                def json_response(payload, status=200, extra_headers=None):
                    return payload

                def event_line(payload):
                    return canonicalize_payload(payload)
                """
            }
        )
        (violation,) = findings(project, "R008")
        assert violation.symbol == "repro.serve.protocol.json_response"
        assert "must canonicalize its payload" in violation.message

    def test_missing_serve_root_anchors_on_the_module(self):
        # A protocol module that lost a root entirely still reports it.
        project = project_from(
            **{
                "repro.serve.protocol": """
                def canonicalize_payload(value):
                    return value

                def json_response(payload, status=200, extra_headers=None):
                    return canonicalize_payload(payload)
                """
            }
        )
        (violation,) = findings(project, "R008")
        assert violation.symbol == "repro.serve.protocol.event_line"
