"""Unit tests for the list scheduler with recovery slack."""

from __future__ import annotations

import pytest

from repro.comm.bus import TDMABus
from repro.core.application import Application, Message, Process
from repro.core.architecture import Architecture, HVersion, Node, NodeType
from repro.core.exceptions import SchedulingError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.scheduling.list_scheduler import ListScheduler

from tests.conftest import build_diamond_application, uniform_profile_for


class TestFig4aSchedule:
    """The Fig. 4a schedule: the numbers the paper draws."""

    def test_root_schedule_and_slack(self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping):
        schedule = ListScheduler().schedule(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, {"N1": 1, "N2": 1}
        )
        schedule.validate()
        assert schedule.entry("P1").start == 0.0
        assert schedule.entry("P1").finish == 75.0
        assert schedule.entry("P2").finish == 165.0
        # P3 waits for message m2 (10 ms on the bus after P1 finishes).
        assert schedule.entry("P3").start == 85.0
        # P4 waits for m3 from P2 (arrives 175) on N2.
        assert schedule.entry("P4").start == 175.0
        assert schedule.node_recovery_slack["N1"] == pytest.approx(105.0)
        assert schedule.node_recovery_slack["N2"] == pytest.approx(90.0)
        assert schedule.length == pytest.approx(340.0)
        assert schedule.meets_deadline(360.0)

    def test_intra_node_message_takes_no_bus_time(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        schedule = ListScheduler().schedule(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, {"N1": 1, "N2": 1}
        )
        # m1 (P1 -> P2) and m4 (P3 -> P4) stay node-local.
        assert not schedule.has_message("m1")
        assert not schedule.has_message("m4")
        assert schedule.has_message("m2")
        assert schedule.has_message("m3")


class TestSchedulerBasics:
    def _single_node_problem(self):
        application = build_diamond_application(message_time=2.0)
        node_type = NodeType("N", [HVersion(1, 1.0)])
        profile = uniform_profile_for(application, [node_type])
        architecture = Architecture([Node("N", node_type)])
        mapping = ProcessMapping({name: "N" for name in ("A", "B", "C", "D")})
        return application, architecture, mapping, profile

    def test_single_node_schedule_is_serial(self):
        application, architecture, mapping, profile = self._single_node_problem()
        schedule = ListScheduler().schedule(application, architecture, mapping, profile)
        schedule.validate()
        assert schedule.fault_free_length == pytest.approx(10 + 20 + 15 + 12)
        assert schedule.messages == []

    def test_zero_budget_means_zero_slack(self):
        application, architecture, mapping, profile = self._single_node_problem()
        schedule = ListScheduler().schedule(application, architecture, mapping, profile)
        assert schedule.node_recovery_slack == {"N": 0.0}
        assert schedule.length == schedule.fault_free_length

    def test_precedence_respected_across_nodes(self, diamond_app, two_node_types):
        profile = uniform_profile_for(diamond_app, two_node_types)
        architecture = Architecture(
            [Node("NA", two_node_types[0]), Node("NB", two_node_types[1])]
        )
        mapping = ProcessMapping({"A": "NA", "B": "NB", "C": "NA", "D": "NB"})
        schedule = ListScheduler().schedule(diamond_app, architecture, mapping, profile)
        schedule.validate()
        for message in diamond_app.graphs[0].messages:
            producer = schedule.entry(message.source)
            consumer = schedule.entry(message.destination)
            assert consumer.start >= producer.finish

    def test_cross_node_messages_delay_consumers(self, diamond_app, two_node_types):
        profile = uniform_profile_for(diamond_app, two_node_types)
        architecture = Architecture(
            [Node("NA", two_node_types[0]), Node("NB", two_node_types[1])]
        )
        mapping = ProcessMapping({"A": "NA", "B": "NB", "C": "NA", "D": "NB"})
        schedule = ListScheduler().schedule(diamond_app, architecture, mapping, profile)
        message = schedule.message_entry("mAB")
        assert message.start >= schedule.entry("A").finish
        assert schedule.entry("B").start >= message.finish

    def test_unknown_budget_node_rejected(self, diamond_app, two_node_types):
        profile = uniform_profile_for(diamond_app, two_node_types)
        architecture = Architecture([Node("NA", two_node_types[0])])
        mapping = ProcessMapping({name: "NA" for name in ("A", "B", "C", "D")})
        with pytest.raises(SchedulingError):
            ListScheduler().schedule(
                diamond_app, architecture, mapping, profile, {"NX": 1}
            )

    def test_negative_budget_rejected(self, diamond_app, two_node_types):
        profile = uniform_profile_for(diamond_app, two_node_types)
        architecture = Architecture([Node("NA", two_node_types[0])])
        mapping = ProcessMapping({name: "NA" for name in ("A", "B", "C", "D")})
        with pytest.raises(SchedulingError):
            ListScheduler().schedule(
                diamond_app, architecture, mapping, profile, {"NA": -1}
            )

    def test_incomplete_mapping_rejected(self, diamond_app, two_node_types):
        profile = uniform_profile_for(diamond_app, two_node_types)
        architecture = Architecture([Node("NA", two_node_types[0])])
        mapping = ProcessMapping({"A": "NA"})
        with pytest.raises(Exception):
            ListScheduler().schedule(diamond_app, architecture, mapping, profile)

    def test_deterministic_output(self, diamond_app, two_node_types):
        profile = uniform_profile_for(diamond_app, two_node_types)
        architecture = Architecture(
            [Node("NA", two_node_types[0]), Node("NB", two_node_types[1])]
        )
        mapping = ProcessMapping({"A": "NA", "B": "NB", "C": "NA", "D": "NB"})
        first = ListScheduler().schedule(diamond_app, architecture, mapping, profile)
        second = ListScheduler().schedule(diamond_app, architecture, mapping, profile)
        assert [(e.process, e.start, e.finish) for e in first.processes] == [
            (e.process, e.start, e.finish) for e in second.processes
        ]


class TestSlackSharingToggle:
    def test_naive_slack_is_never_shorter(self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping):
        budgets = {"N1": 1, "N2": 1}
        shared = ListScheduler(slack_sharing=True).schedule(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, budgets
        )
        naive = ListScheduler(slack_sharing=False).schedule(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, budgets
        )
        assert naive.length >= shared.length
        assert naive.node_recovery_slack["N1"] == pytest.approx(75 + 15 + 90 + 15)


class TestSchedulerWithTDMABus:
    def test_messages_wait_for_their_slot(self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping):
        bus = TDMABus(["N1", "N2"], slot_length=20.0)
        schedule = ListScheduler(bus=bus).schedule(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, {"N1": 1, "N2": 1}
        )
        schedule.validate()
        # m2 is produced by N1 at t=75; N1's slots are [0,20), [40,60), [80,100)...
        message = schedule.message_entry("m2")
        assert message.start >= 75.0
        assert message.start % 40.0 < 20.0  # inside an N1 slot
        assert schedule.entry("P3").start >= message.finish


class TestStructureMemoInvalidation:
    """In-place graph edits must invalidate the memoized scheduling structure.

    Regression: the memo guard used to key on (process count, message count)
    only, so a rewired edge or a renamed message — edits that preserve both
    counts — silently reused stale layers and incoming-message tables.  The
    guard now keys on the application's structural token.
    """

    def _two_node_problem(self, application):
        node_type = NodeType("N", [HVersion(1, 1.0)])
        other = NodeType("M", [HVersion(1, 1.0)])
        profile = uniform_profile_for(application, [node_type, other])
        architecture = Architecture([Node("NA", node_type), Node("NB", other)])
        mapping = ProcessMapping({"A": "NA", "B": "NB", "C": "NA", "D": "NB"})
        return architecture, mapping, profile

    def test_rewired_edge_yields_fresh_schedule(self):
        application = build_diamond_application(message_time=2.0)
        architecture, mapping, profile = self._two_node_problem(application)
        scheduler = ListScheduler()
        stale = scheduler.schedule(application, architecture, mapping, profile)
        # Rewire B -> D into A -> D: same process and message counts, but D
        # now depends on A, putting a new message (from another node) on the
        # bus.  A stale incoming table would reproduce `stale` instead.
        graph = next(iter(application.graphs))
        graph.remove_message("B", "D")
        graph.add_message(Message("mAD", "A", "D", transmission_time=2.0))
        rescheduled = scheduler.schedule(application, architecture, mapping, profile)
        fresh = ListScheduler().schedule(application, architecture, mapping, profile)
        assert rescheduled == fresh
        assert rescheduled != stale
        assert rescheduled.has_message("mAD")
        assert not rescheduled.has_message("mBD")

    def test_renamed_message_yields_fresh_schedule(self):
        application = build_diamond_application(message_time=2.0)
        architecture, mapping, profile = self._two_node_problem(application)
        scheduler = ListScheduler()
        stale = scheduler.schedule(application, architecture, mapping, profile)
        assert stale.has_message("mAB")
        graph = next(iter(application.graphs))
        removed = graph.remove_message("A", "B")
        graph.add_message(
            Message("renamed", "A", "B", transmission_time=removed.transmission_time)
        )
        rescheduled = scheduler.schedule(application, architecture, mapping, profile)
        assert rescheduled == ListScheduler().schedule(
            application, architecture, mapping, profile
        )
        assert rescheduled.has_message("renamed")
        assert not rescheduled.has_message("mAB")

    def test_changed_transmission_time_yields_fresh_schedule(self):
        application = build_diamond_application(message_time=2.0)
        architecture, mapping, profile = self._two_node_problem(application)
        scheduler = ListScheduler()
        stale = scheduler.schedule(application, architecture, mapping, profile)
        graph = next(iter(application.graphs))
        graph.remove_message("A", "B")
        graph.add_message(Message("mAB", "A", "B", transmission_time=9.0))
        rescheduled = scheduler.schedule(application, architecture, mapping, profile)
        assert rescheduled.message_entry("mAB").duration == 9.0
        assert rescheduled != stale
