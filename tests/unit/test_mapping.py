"""Unit tests for the tabu-search MappingAlgorithm."""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, Node
from repro.core.exceptions import MappingError
from repro.core.mapping import MappingAlgorithm, Objective
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.redundancy import FixedHardeningRedundancyOpt
from repro.experiments.motivational import fig1_application, fig1_node_types, fig1_profile


@pytest.fixture
def fig1_architecture():
    n1, n2 = fig1_node_types()
    architecture = Architecture([Node("N1", n1), Node("N2", n2)])
    architecture.set_min_hardening()
    return architecture


class TestInitialMapping:
    def test_initial_mapping_is_complete_and_valid(self, fig1_app, fig1_prof, fig1_architecture):
        algorithm = MappingAlgorithm()
        mapping = algorithm.initial_mapping(fig1_app, fig1_architecture, fig1_prof)
        mapping.validate(fig1_app, fig1_architecture, fig1_prof)
        assert len(mapping) == 4

    def test_initial_mapping_balances_load(self, fig1_app, fig1_prof, fig1_architecture):
        algorithm = MappingAlgorithm()
        mapping = algorithm.initial_mapping(fig1_app, fig1_architecture, fig1_prof)
        # With two similar nodes the greedy load balancer should use both.
        assert len(mapping.used_nodes()) == 2

    def test_unmappable_process_raises(self, fig1_app, fig1_architecture):
        empty_profile = ExecutionProfile()
        with pytest.raises(MappingError):
            MappingAlgorithm().initial_mapping(fig1_app, fig1_architecture, empty_profile)


class TestOptimizeScheduleLength:
    def test_finds_feasible_design_for_fig1(self, fig1_app, fig1_prof, fig1_architecture):
        algorithm = MappingAlgorithm(max_iterations=6, stop_after_no_improvement=3)
        result = algorithm.optimize(
            fig1_app, fig1_architecture, fig1_prof, objective=Objective.SCHEDULE_LENGTH
        )
        assert result is not None
        assert result.is_feasible
        assert result.schedule_length <= fig1_app.deadline
        assert result.objective is Objective.SCHEDULE_LENGTH
        assert result.evaluations > 0

    def test_respects_initial_mapping(self, fig1_app, fig1_prof, fig1_architecture):
        initial = ProcessMapping({"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"})
        algorithm = MappingAlgorithm(max_iterations=1, stop_after_no_improvement=1)
        result = algorithm.optimize(
            fig1_app,
            fig1_architecture,
            fig1_prof,
            objective=Objective.SCHEDULE_LENGTH,
            initial_mapping=initial,
        )
        assert result is not None
        # The provided initial mapping must not be mutated by the search.
        assert initial.node_of("P1") == "N1"

    def test_single_node_architecture_has_no_moves(self, fig1_app, fig1_prof):
        n1, _ = fig1_node_types()
        architecture = Architecture([Node("N1", n1)])
        algorithm = MappingAlgorithm(max_iterations=3)
        result = algorithm.optimize(
            fig1_app, architecture, fig1_prof, objective=Objective.SCHEDULE_LENGTH
        )
        # Everything on N1 is unschedulable at any hardening level (Fig. 4b/4d).
        assert result is None


class TestOptimizeCost:
    def test_cost_objective_returns_feasible_cheapest(self, fig1_app, fig1_prof, fig1_architecture):
        algorithm = MappingAlgorithm(max_iterations=6, stop_after_no_improvement=3)
        schedule_result = algorithm.optimize(
            fig1_app, fig1_architecture, fig1_prof, objective=Objective.SCHEDULE_LENGTH
        )
        cost_result = algorithm.optimize(
            fig1_app,
            fig1_architecture,
            fig1_prof,
            objective=Objective.COST,
            initial_mapping=schedule_result.mapping,
        )
        assert cost_result is not None
        assert cost_result.is_feasible
        assert cost_result.cost <= 80.0  # never worse than the monoprocessor N2^3
        assert cost_result.objective_value == cost_result.cost

    def test_cost_objective_infeasible_when_nothing_schedulable(self, fig1_app, fig1_prof):
        n1, _ = fig1_node_types()
        architecture = Architecture([Node("N1", n1)])
        algorithm = MappingAlgorithm(max_iterations=2)
        result = algorithm.optimize(
            fig1_app, architecture, fig1_prof, objective=Objective.COST
        )
        assert result is None


class TestWithFixedHardeningOptimizer:
    def test_min_hardening_optimizer_is_used(self, fig1_app, fig1_prof, fig1_architecture):
        algorithm = MappingAlgorithm(
            redundancy_optimizer=FixedHardeningRedundancyOpt("min"), max_iterations=4
        )
        result = algorithm.optimize(
            fig1_app, fig1_architecture, fig1_prof, objective=Objective.SCHEDULE_LENGTH
        )
        # At minimum hardening the Fig. 1 error rates (1e-3) need several
        # re-executions; no mapping fits 360 ms, matching the paper's message
        # that software-only fault tolerance fails at high error rates.
        assert result is None

    def test_max_hardening_optimizer_finds_design(self, fig1_app, fig1_prof, fig1_architecture):
        algorithm = MappingAlgorithm(
            redundancy_optimizer=FixedHardeningRedundancyOpt("max"), max_iterations=4
        )
        result = algorithm.optimize(
            fig1_app, fig1_architecture, fig1_prof, objective=Objective.SCHEDULE_LENGTH
        )
        assert result is not None
        assert result.decision.hardening == {"N1": 3, "N2": 3}


class TestObjectiveValueHelper:
    def test_infeasible_decision_maps_to_infinity(self):
        assert MappingAlgorithm._objective_value(None, Objective.COST) == float("inf")
        assert (
            MappingAlgorithm._objective_value(None, Objective.SCHEDULE_LENGTH)
            == float("inf")
        )
