"""Unit tests for the ProcessMapping data type."""

from __future__ import annotations

import pytest

from repro.core.exceptions import MappingError
from repro.core.mapping_model import ProcessMapping


class TestProcessMapping:
    def test_assign_and_lookup(self):
        mapping = ProcessMapping()
        mapping.assign("P1", "N1")
        assert mapping.node_of("P1") == "N1"
        assert mapping.is_mapped("P1")
        assert not mapping.is_mapped("P2")

    def test_unmapped_lookup_raises(self):
        with pytest.raises(MappingError):
            ProcessMapping().node_of("P1")

    def test_processes_on(self, fig4a_mapping):
        assert fig4a_mapping.processes_on("N1") == ["P1", "P2"]
        assert fig4a_mapping.processes_on("N2") == ["P3", "P4"]
        assert fig4a_mapping.processes_on("N3") == []

    def test_used_nodes_preserves_first_seen_order(self, fig4a_mapping):
        assert fig4a_mapping.used_nodes() == ["N1", "N2"]

    def test_copy_is_independent(self, fig4a_mapping):
        clone = fig4a_mapping.copy()
        clone.assign("P1", "N2")
        assert fig4a_mapping.node_of("P1") == "N1"

    def test_moved_returns_new_mapping(self, fig4a_mapping):
        moved = fig4a_mapping.moved("P1", "N2")
        assert moved.node_of("P1") == "N2"
        assert fig4a_mapping.node_of("P1") == "N1"
        assert moved != fig4a_mapping

    def test_equality_and_hash(self):
        first = ProcessMapping({"P1": "N1"})
        second = ProcessMapping({"P1": "N1"})
        third = ProcessMapping({"P1": "N2"})
        assert first == second
        assert hash(first) == hash(second)
        assert first != third
        assert first != "not a mapping"

    def test_len_iter_and_dict(self, fig4a_mapping):
        assert len(fig4a_mapping) == 4
        assert set(fig4a_mapping) == {"P1", "P2", "P3", "P4"}
        assert fig4a_mapping.as_dict()["P3"] == "N2"

    def test_validate_accepts_consistent_mapping(
        self, fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof
    ):
        fig4a_mapping.validate(fig1_app, fig4a_architecture, fig1_prof)

    def test_validate_detects_unmapped_process(self, fig1_app, fig4a_architecture):
        incomplete = ProcessMapping({"P1": "N1"})
        with pytest.raises(MappingError, match="Unmapped"):
            incomplete.validate(fig1_app, fig4a_architecture)

    def test_validate_detects_unknown_process(self, fig1_app, fig4a_architecture, fig4a_mapping):
        extra = fig4a_mapping.copy()
        extra.assign("P9", "N1")
        with pytest.raises(MappingError, match="unknown processes"):
            extra.validate(fig1_app, fig4a_architecture)

    def test_validate_detects_unknown_node(self, fig1_app, fig4a_architecture, fig4a_mapping):
        wrong = fig4a_mapping.moved("P1", "N9")
        with pytest.raises(MappingError, match="unknown node"):
            wrong.validate(fig1_app, fig4a_architecture)

    def test_validate_detects_unsupported_profile_entry(
        self, fig1_app, fig4a_architecture, fig4a_mapping
    ):
        from repro.core.profile import ExecutionProfile

        empty_profile = ExecutionProfile()
        with pytest.raises(MappingError, match="no execution profile entry"):
            fig4a_mapping.validate(fig1_app, fig4a_architecture, empty_profile)
