"""Unit tests for the motivational-example builders (Fig. 1 / Fig. 3 tables)."""

from __future__ import annotations

import pytest

from repro.experiments.motivational import (
    FIG1_MESSAGE_TIME,
    fig1_application,
    fig1_node_types,
    fig1_profile,
    fig3_application,
    fig3_node_type,
    fig3_profile,
)


class TestFig1Builders:
    def test_application_structure(self):
        application = fig1_application()
        assert application.deadline == 360.0
        assert application.reliability_goal == pytest.approx(1 - 1e-5)
        assert application.recovery_overhead == 15.0
        graph = application.graphs[0]
        assert graph.process_names == ["P1", "P2", "P3", "P4"]
        assert graph.sources() == ["P1"]
        assert graph.sinks() == ["P4"]

    def test_message_time_is_configurable(self):
        application = fig1_application(message_time=5.0)
        assert all(m.transmission_time == 5.0 for m in application.messages())
        default = fig1_application()
        assert all(m.transmission_time == FIG1_MESSAGE_TIME for m in default.messages())

    def test_node_type_costs_match_the_figure(self):
        n1, n2 = fig1_node_types()
        assert [n1.cost(level) for level in (1, 2, 3)] == [16.0, 32.0, 64.0]
        assert [n2.cost(level) for level in (1, 2, 3)] == [20.0, 40.0, 80.0]

    def test_profile_matches_the_printed_tables(self):
        profile = fig1_profile()
        # Spot checks straight from Fig. 1.
        assert profile.wcet("P1", "N1", 1) == 60.0
        assert profile.failure_probability("P1", "N1", 1) == pytest.approx(1.2e-3)
        assert profile.wcet("P4", "N1", 3) == 105.0
        assert profile.failure_probability("P4", "N1", 3) == pytest.approx(1.6e-10)
        assert profile.wcet("P3", "N2", 2) == 60.0
        assert profile.failure_probability("P3", "N2", 2) == pytest.approx(1.2e-5)
        assert len(profile) == 4 * 2 * 3

    def test_n2_is_faster_than_n1_everywhere(self):
        profile = fig1_profile()
        for process in ("P1", "P2", "P3", "P4"):
            for level in (1, 2, 3):
                assert profile.wcet(process, "N2", level) < profile.wcet(process, "N1", level)

    def test_hardening_reduces_failure_probabilities(self):
        profile = fig1_profile()
        for process in ("P1", "P2", "P3", "P4"):
            for node in ("N1", "N2"):
                probabilities = [
                    profile.failure_probability(process, node, level) for level in (1, 2, 3)
                ]
                assert probabilities == sorted(probabilities, reverse=True)


class TestFig3Builders:
    def test_application_is_single_process(self):
        application = fig3_application()
        assert application.number_of_processes() == 1
        assert application.recovery_overhead == 20.0
        assert application.deadline == 360.0

    def test_node_type_costs(self):
        node_type = fig3_node_type()
        assert [node_type.cost(level) for level in (1, 2, 3)] == [10.0, 20.0, 40.0]

    def test_profile_matches_the_figure(self):
        profile = fig3_profile()
        assert profile.wcet("P1", "N1", 1) == 80.0
        assert profile.failure_probability("P1", "N1", 1) == pytest.approx(4e-2)
        assert profile.wcet("P1", "N1", 3) == 160.0
        assert profile.failure_probability("P1", "N1", 3) == pytest.approx(4e-6)
