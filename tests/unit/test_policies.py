"""Unit tests for the checkpointing and replication policy extensions."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ModelError, ReliabilityError
from repro.policies.checkpointing import (
    CheckpointingPlan,
    optimal_checkpoint_count,
    worst_case_execution_with_checkpoints,
)
from repro.policies.replication import (
    ReplicationPlan,
    replication_failure_probability,
    required_replicas,
)


class TestWorstCaseWithCheckpoints:
    def test_single_checkpoint_no_overhead_matches_reexecution(self):
        # n=1, chi=0: t + k * (t + mu) — the paper's re-execution worst case.
        assert worst_case_execution_with_checkpoints(30.0, 1, 2, 0.0, 5.0) == pytest.approx(
            30.0 + 2 * 35.0
        )

    def test_more_checkpoints_reduce_recovery_but_add_overhead(self):
        with_two = worst_case_execution_with_checkpoints(100.0, 2, 1, 1.0, 5.0)
        with_one = worst_case_execution_with_checkpoints(100.0, 1, 1, 1.0, 5.0)
        assert with_two < with_one

    def test_zero_faults_cost_is_fault_free(self):
        assert worst_case_execution_with_checkpoints(50.0, 4, 0, 2.0, 5.0) == pytest.approx(
            50.0 + 8.0
        )

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ModelError):
            worst_case_execution_with_checkpoints(10.0, 0, 1, 1.0, 1.0)
        with pytest.raises(ModelError):
            worst_case_execution_with_checkpoints(10.0, 1, -1, 1.0, 1.0)
        with pytest.raises(ValueError):
            worst_case_execution_with_checkpoints(0.0, 1, 1, 1.0, 1.0)


class TestOptimalCheckpointCount:
    def test_matches_analytic_square_root(self):
        # n0 = sqrt(k * t / chi) = sqrt(2 * 50 / 2) ~ 7.07 -> 7 is optimal.
        count = optimal_checkpoint_count(50.0, faults=2, checkpoint_overhead=2.0, recovery_overhead=5.0)
        assert count in (7, 8)
        best = worst_case_execution_with_checkpoints(50.0, count, 2, 2.0, 5.0)
        for other in range(1, 20):
            assert best <= worst_case_execution_with_checkpoints(50.0, other, 2, 2.0, 5.0) + 1e-9

    def test_no_faults_needs_single_checkpoint(self):
        assert optimal_checkpoint_count(50.0, 0, 2.0, 5.0) == 1

    def test_free_checkpoints_saturate_cap(self):
        assert optimal_checkpoint_count(50.0, 2, 0.0, 5.0, max_checkpoints=16) == 16

    def test_expensive_checkpoints_collapse_to_one(self):
        assert optimal_checkpoint_count(10.0, 1, 100.0, 5.0) == 1

    def test_invalid_cap_rejected(self):
        with pytest.raises(ModelError):
            optimal_checkpoint_count(10.0, 1, 1.0, 1.0, max_checkpoints=0)


class TestCheckpointingPlan:
    def test_optimal_plan_beats_reexecution_for_long_processes(self):
        plan = CheckpointingPlan.optimal(
            "P1", wcet=100.0, faults=3, checkpoint_overhead=1.0, recovery_overhead=5.0
        )
        assert plan.checkpoints > 1
        assert plan.worst_case_execution < plan.reexecution_worst_case
        assert plan.saving_over_reexecution() > 0

    def test_plan_for_zero_faults_has_no_saving(self):
        plan = CheckpointingPlan.optimal("P1", 10.0, 0, 1.0, 2.0)
        assert plan.checkpoints == 1
        assert plan.saving_over_reexecution() == 0.0


class TestReplication:
    def test_joint_failure_probability_is_product(self):
        assert replication_failure_probability([1e-3, 1e-3]) == pytest.approx(1e-6, rel=1e-5)

    def test_single_replica_is_identity(self):
        assert replication_failure_probability([0.25]) == pytest.approx(0.25)

    def test_empty_replicas_rejected(self):
        with pytest.raises(ModelError):
            replication_failure_probability([])

    def test_required_replicas(self):
        assert required_replicas(1e-3, 1e-5) == 2
        assert required_replicas(1e-3, 1e-9) == 3
        assert required_replicas(1e-3, 1e-3) == 1

    def test_required_replicas_unreachable(self):
        with pytest.raises(ReliabilityError):
            required_replicas(0.9, 1e-12, max_replicas=2)

    def test_replication_plan(self):
        plan = ReplicationPlan("P1", {"N1": 1e-3, "N2": 2e-3})
        assert plan.replica_count == 2
        assert plan.failure_probability == pytest.approx(2e-6, rel=1e-3)
        assert plan.meets(1e-5)
        assert not plan.meets(1e-7)

    def test_empty_plan_rejected(self):
        with pytest.raises(ModelError):
            ReplicationPlan("P1", {})
