"""Unit tests for the partial-critical-path scheduling priorities."""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, Node
from repro.core.mapping_model import ProcessMapping
from repro.scheduling.priorities import critical_path_priorities, mapped_execution_time


class TestMappedExecutionTime:
    def test_uses_current_hardening(self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping):
        assert (
            mapped_execution_time("P1", fig4a_architecture, fig4a_mapping, fig1_prof) == 75.0
        )
        fig4a_architecture.node("N1").hardening = 1
        assert (
            mapped_execution_time("P1", fig4a_architecture, fig4a_mapping, fig1_prof) == 60.0
        )


class TestCriticalPathPriorities:
    def test_priorities_decrease_along_the_graph(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        priorities = critical_path_priorities(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof
        )
        assert priorities["P1"] > priorities["P2"] > priorities["P4"]
        assert priorities["P1"] > priorities["P3"] > priorities["P4"]

    def test_sink_priority_is_own_wcet(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        priorities = critical_path_priorities(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof
        )
        assert priorities["P4"] == pytest.approx(75.0)

    def test_cross_node_messages_contribute(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        priorities = critical_path_priorities(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof
        )
        # P2 -> P4 crosses nodes (10 ms message): 90 + 10 + 75.
        assert priorities["P2"] == pytest.approx(175.0)

    def test_same_node_messages_do_not_contribute(
        self, fig1_app, fig1_prof, fig4a_architecture
    ):
        mapping = ProcessMapping({"P1": "N1", "P2": "N1", "P3": "N1", "P4": "N1"})
        priorities = critical_path_priorities(
            fig1_app, fig4a_architecture, mapping, fig1_prof
        )
        # All on N1 at h=2: P2 rank = 90 + 90 (P4) with no message time.
        assert priorities["P2"] == pytest.approx(180.0)

    def test_every_process_has_a_priority(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        priorities = critical_path_priorities(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof
        )
        assert set(priorities) == {"P1", "P2", "P3", "P4"}
