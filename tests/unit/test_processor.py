"""Unit tests for the abstract processor model of the fault-injection substrate."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ModelError
from repro.faults.processor import ProcessorModel


@pytest.fixture
def baseline_processor() -> ProcessorModel:
    return ProcessorModel(
        name="cpu",
        flip_flops=10_000,
        upset_rate_per_ff_cycle=1e-12,
        clock_mhz=100.0,
        architectural_derating=0.1,
    )


class TestProcessorModelValidation:
    def test_requires_name_and_flip_flops(self):
        with pytest.raises(ModelError):
            ProcessorModel(name="", flip_flops=10, upset_rate_per_ff_cycle=1e-12)
        with pytest.raises(ModelError):
            ProcessorModel(name="cpu", flip_flops=0, upset_rate_per_ff_cycle=1e-12)

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            ProcessorModel(name="cpu", flip_flops=10, upset_rate_per_ff_cycle=2.0)
        with pytest.raises(ValueError):
            ProcessorModel(
                name="cpu",
                flip_flops=10,
                upset_rate_per_ff_cycle=1e-12,
                architectural_derating=1.5,
            )


class TestCyclesAndProbabilities:
    def test_cycles_for(self, baseline_processor):
        assert baseline_processor.cycles_for(10.0) == 1_000_000

    def test_cycles_for_rejects_non_positive(self, baseline_processor):
        with pytest.raises(ValueError):
            baseline_processor.cycles_for(0.0)

    def test_error_probability_per_cycle(self, baseline_processor):
        # 10_000 FFs * 1e-12 upsets * 0.1 derating = 1e-9 per cycle.
        assert baseline_processor.error_probability_per_cycle() == pytest.approx(1e-9)

    def test_failure_probability_scales_with_wcet(self, baseline_processor):
        short = baseline_processor.failure_probability(1.0)
        long = baseline_processor.failure_probability(10.0)
        assert long > short
        assert long == pytest.approx(1e-3, rel=1e-2)

    def test_fully_hardened_processor_is_more_reliable(self, baseline_processor):
        hardened = baseline_processor.with_hardening(
            hardened_fraction=0.99, hardening_efficiency=0.999
        )
        assert (
            hardened.error_probability_per_cycle()
            < baseline_processor.error_probability_per_cycle()
        )
        assert hardened.failure_probability(10.0) < baseline_processor.failure_probability(10.0)

    def test_zero_upset_rate_never_fails(self):
        processor = ProcessorModel(
            name="cpu", flip_flops=100, upset_rate_per_ff_cycle=0.0
        )
        assert processor.failure_probability(10.0) == 0.0


class TestDerivedProcessors:
    def test_with_hardening_preserves_other_fields(self, baseline_processor):
        hardened = baseline_processor.with_hardening(0.5)
        assert hardened.flip_flops == baseline_processor.flip_flops
        assert hardened.clock_mhz == baseline_processor.clock_mhz
        assert hardened.hardened_fraction == 0.5

    def test_with_slowdown_reduces_clock(self, baseline_processor):
        slowed = baseline_processor.with_slowdown(1.25)
        assert slowed.clock_mhz == pytest.approx(80.0)

    def test_slowdown_below_one_rejected(self, baseline_processor):
        with pytest.raises(ModelError):
            baseline_processor.with_slowdown(0.9)

    def test_slowdown_reduces_cycles_for_same_wcet(self, baseline_processor):
        slowed = baseline_processor.with_slowdown(2.0)
        assert slowed.cycles_for(10.0) == baseline_processor.cycles_for(10.0) // 2
