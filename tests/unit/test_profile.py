"""Unit tests for execution profiles (t_ijh / p_ijh tables)."""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, HVersion, Node, NodeType
from repro.core.exceptions import ProfileError
from repro.core.profile import ExecutionProfile, ProfileEntry


class TestProfileEntry:
    def test_valid_entry(self):
        entry = ProfileEntry(wcet=10.0, failure_probability=1e-5)
        assert entry.wcet == 10.0

    def test_invalid_wcet(self):
        with pytest.raises(ValueError):
            ProfileEntry(wcet=0.0, failure_probability=0.1)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            ProfileEntry(wcet=1.0, failure_probability=1.5)


class TestExecutionProfile:
    def test_add_and_lookup(self, fig1_prof):
        assert fig1_prof.wcet("P1", "N1", 1) == 60.0
        assert fig1_prof.failure_probability("P1", "N1", 1) == pytest.approx(1.2e-3)
        assert fig1_prof.wcet("P4", "N2", 3) == 90.0

    def test_missing_entry_raises_with_context(self, fig1_prof):
        with pytest.raises(ProfileError, match="P1.*N1.*hardening level 4"):
            fig1_prof.wcet("P1", "N1", 4)

    def test_supports(self, fig1_prof):
        assert fig1_prof.supports("P1", "N1", 2)
        assert fig1_prof.supports("P1", "N1")
        assert not fig1_prof.supports("P1", "N9")
        assert not fig1_prof.supports("P9", "N1")

    def test_wcet_on_node_uses_current_hardening(self, fig1_prof, fig1_nodes):
        n1, _ = fig1_nodes
        node = Node("N1", n1, hardening=2)
        assert fig1_prof.wcet_on_node("P1", node) == 75.0
        node.harden()
        assert fig1_prof.wcet_on_node("P1", node) == 90.0

    def test_failure_probability_on_node(self, fig1_prof, fig1_nodes):
        _, n2 = fig1_nodes
        node = Node("N2", n2, hardening=3)
        assert fig1_prof.failure_probability_on_node("P4", node) == pytest.approx(1.3e-10)

    def test_from_tables_roundtrip(self):
        wcet = {("P1", "N1", 1): 10.0, ("P1", "N1", 2): 12.0}
        prob = {("P1", "N1", 1): 1e-4, ("P1", "N1", 2): 1e-6}
        profile = ExecutionProfile.from_tables(wcet, prob)
        assert profile.wcet("P1", "N1", 2) == 12.0
        assert len(profile) == 2

    def test_from_tables_mismatched_keys_rejected(self):
        with pytest.raises(ProfileError):
            ExecutionProfile.from_tables({("P1", "N1", 1): 10.0}, {})

    def test_processes_and_node_types(self, fig1_prof):
        assert fig1_prof.processes() == ["P1", "P2", "P3", "P4"]
        assert fig1_prof.node_types() == ["N1", "N2"]

    def test_average_wcet(self, fig1_prof):
        assert fig1_prof.average_wcet("P1", "N1") == pytest.approx((60 + 75 + 90) / 3)

    def test_average_wcet_missing_raises(self, fig1_prof):
        with pytest.raises(ProfileError):
            fig1_prof.average_wcet("P1", "N9")

    def test_fastest_node_type_for(self, fig1_prof, fig1_nodes):
        fastest = fig1_prof.fastest_node_type_for("P1", list(fig1_nodes))
        assert fastest.name == "N2"  # 50 ms beats 60 ms at minimum hardening

    def test_fastest_node_type_without_support_raises(self, fig1_nodes):
        profile = ExecutionProfile()
        with pytest.raises(ProfileError):
            profile.fastest_node_type_for("P1", list(fig1_nodes))

    def test_validate_against_full_coverage(self, fig1_app, fig1_nodes, fig1_prof):
        fig1_prof.validate_against(fig1_app, list(fig1_nodes))

    def test_validate_against_detects_missing_entries(self, fig1_app, fig1_nodes):
        profile = ExecutionProfile()
        profile.add_entry("P1", "N1", 1, 60.0, 1e-3)
        with pytest.raises(ProfileError, match="missing"):
            profile.validate_against(fig1_app, list(fig1_nodes))

    def test_architecture_supports(self, fig1_prof, fig1_nodes):
        n1, _ = fig1_nodes
        architecture = Architecture([Node("N1", n1)])
        assert fig1_prof.architecture_supports("P1", architecture)
        other = Architecture([Node("NX", NodeType("NX", [HVersion(1, 1.0)]))])
        assert not fig1_prof.architecture_supports("P1", other)

    def test_entries_returns_copy(self, fig1_prof):
        entries = fig1_prof.entries()
        entries.clear()
        assert len(fig1_prof) == 24
