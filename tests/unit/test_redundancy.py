"""Unit tests for RedundancyOpt (hardening/re-execution trade-off)."""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, Node
from repro.core.exceptions import OptimizationError
from repro.core.mapping_model import ProcessMapping
from repro.core.redundancy import FixedHardeningRedundancyOpt, RedundancyOpt
from repro.experiments.motivational import (
    fig1_application,
    fig1_node_types,
    fig1_profile,
    fig3_application,
    fig3_node_type,
    fig3_profile,
)


@pytest.fixture
def fig3_setup():
    application = fig3_application()
    node_type = fig3_node_type()
    profile = fig3_profile()
    architecture = Architecture([Node("N1", node_type)])
    mapping = ProcessMapping({"P1": "N1"})
    return application, architecture, mapping, profile


class TestRedundancyOptFig3:
    def test_selects_cheapest_schedulable_hardening(self, fig3_setup):
        """The paper chooses N1^2: h=3 costs twice as much for the same delay."""
        application, architecture, mapping, profile = fig3_setup
        decision = RedundancyOpt().optimize(application, architecture, mapping, profile)
        assert decision is not None
        assert decision.hardening == {"N1": 2}
        assert decision.reexecutions == {"N1": 2}
        assert decision.cost == 20.0
        assert decision.schedule_length == pytest.approx(340.0)
        assert decision.is_feasible

    def test_does_not_mutate_input_architecture(self, fig3_setup):
        application, architecture, mapping, profile = fig3_setup
        RedundancyOpt().optimize(application, architecture, mapping, profile)
        assert architecture.hardening_vector() == {"N1": 1}

    def test_infeasible_when_deadline_impossible(self, fig3_setup):
        from repro.core.application import Application, Process

        _, architecture, mapping, profile = fig3_setup
        # A 50 ms deadline cannot hold even the fastest h-version (80 ms WCET).
        tight_application = Application(
            name="tight",
            deadline=50.0,
            reliability_goal=1.0 - 1e-5,
            recovery_overhead=20.0,
            period=50.0,
        )
        tight_application.new_graph("G1").add_process(Process("P1"))
        decision = RedundancyOpt().optimize(tight_application, architecture, mapping, profile)
        assert decision is None


class TestRedundancyOptFig4:
    def test_mapping_4a_resolves_to_h2_on_both_nodes(self):
        """Section 6.1: the Fig. 4a mapping leads to N1^2/N2^2 with k=1 each."""
        application = fig1_application()
        n1, n2 = fig1_node_types()
        profile = fig1_profile()
        architecture = Architecture([Node("N1", n1), Node("N2", n2)])
        mapping = ProcessMapping({"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"})
        decision = RedundancyOpt().optimize(application, architecture, mapping, profile)
        assert decision is not None
        assert decision.hardening == {"N1": 2, "N2": 2}
        assert decision.reexecutions == {"N1": 1, "N2": 1}
        assert decision.cost == 72.0
        assert decision.meets_deadline and decision.meets_reliability

    def test_monoprocessor_n1_mapping_is_discarded(self):
        """Section 6.1: mapping everything on N1 is unschedulable at any level."""
        application = fig1_application()
        n1, _ = fig1_node_types()
        profile = fig1_profile()
        architecture = Architecture([Node("N1", n1)])
        mapping = ProcessMapping({name: "N1" for name in ("P1", "P2", "P3", "P4")})
        decision = RedundancyOpt().optimize(application, architecture, mapping, profile)
        assert decision is None

    def test_monoprocessor_n2_mapping_needs_maximum_hardening(self):
        """Section 6.1: re-mapping everything to N2 forces the third level."""
        application = fig1_application()
        _, n2 = fig1_node_types()
        profile = fig1_profile()
        architecture = Architecture([Node("N2", n2)])
        mapping = ProcessMapping({name: "N2" for name in ("P1", "P2", "P3", "P4")})
        decision = RedundancyOpt().optimize(application, architecture, mapping, profile)
        assert decision is not None
        assert decision.hardening == {"N2": 3}
        assert decision.cost == 80.0


class TestFixedHardeningRedundancyOpt:
    def test_min_policy_keeps_minimum_levels(self, fig3_setup):
        application, architecture, mapping, profile = fig3_setup
        decision = FixedHardeningRedundancyOpt("min").optimize(
            application, architecture, mapping, profile
        )
        # Fig. 3a: with the unhardened node the deadline cannot be met.
        assert decision is None

    def test_max_policy_uses_maximum_levels(self, fig3_setup):
        application, architecture, mapping, profile = fig3_setup
        decision = FixedHardeningRedundancyOpt("max").optimize(
            application, architecture, mapping, profile
        )
        assert decision is not None
        assert decision.hardening == {"N1": 3}
        assert decision.cost == 40.0
        assert decision.reexecutions == {"N1": 1}

    def test_unknown_policy_rejected(self):
        with pytest.raises(OptimizationError):
            FixedHardeningRedundancyOpt("median")

    def test_decision_is_feasible_flag(self, fig3_setup):
        application, architecture, mapping, profile = fig3_setup
        decision = FixedHardeningRedundancyOpt("max").optimize(
            application, architecture, mapping, profile
        )
        assert decision.is_feasible
        assert decision.meets_deadline
        assert decision.meets_reliability


class TestEvaluateHardening:
    def test_reports_infeasible_reliability_when_goal_unreachable(self, fig3_setup):
        application, architecture, mapping, profile = fig3_setup
        evaluator = RedundancyOpt(reexecution_opt=None)
        # Re-execution cap of zero makes the goal unreachable at h=1.
        from repro.core.reexecution import ReExecutionOpt

        evaluator = RedundancyOpt(reexecution_opt=ReExecutionOpt(max_reexecutions_per_node=0))
        decision = evaluator.evaluate_hardening(
            application, architecture, mapping, profile, {"N1": 1}
        )
        assert not decision.meets_reliability
        assert decision.reexecutions == {"N1": 0}
