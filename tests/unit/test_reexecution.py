"""Unit tests for the greedy ReExecutionOpt heuristic."""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, HVersion, Node, NodeType
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.reexecution import ReExecutionOpt
from repro.experiments.motivational import fig3_application, fig3_node_type, fig3_profile


class TestReExecutionOptFig3:
    """The paper's Fig. 3: required re-executions are 6, 2 and 1 per h-version."""

    @pytest.mark.parametrize("level, expected_k", [(1, 6), (2, 2), (3, 1)])
    def test_required_reexecutions_per_hardening_level(self, level, expected_k):
        application = fig3_application()
        node_type = fig3_node_type()
        profile = fig3_profile()
        architecture = Architecture([Node("N1", node_type, hardening=level)])
        mapping = ProcessMapping({"P1": "N1"})
        decision = ReExecutionOpt().optimize(application, architecture, mapping, profile)
        assert decision is not None
        assert decision.reexecutions == {"N1": expected_k}
        assert decision.meets_goal
        assert decision.total_reexecutions == expected_k


class TestReExecutionOptFig4a:
    def test_one_reexecution_per_node(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        decision = ReExecutionOpt().optimize(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof
        )
        assert decision is not None
        assert decision.reexecutions == {"N1": 1, "N2": 1}
        assert decision.system_failure_per_iteration == pytest.approx(9.6e-10, abs=1e-13)


class TestReExecutionOptGeneral:
    def _one_node_setup(self, failure_probability: float):
        from repro.core.application import Application, Process

        application = Application(
            "app", deadline=1000.0, reliability_goal=1 - 1e-5, recovery_overhead=1.0
        )
        graph = application.new_graph("G")
        graph.add_process(Process("P1"))
        node_type = NodeType("N1", [HVersion(1, 1.0)])
        profile = ExecutionProfile()
        profile.add_entry("P1", "N1", 1, 10.0, failure_probability)
        architecture = Architecture([Node("N1", node_type)])
        mapping = ProcessMapping({"P1": "N1"})
        return application, architecture, mapping, profile

    def test_zero_failure_probability_needs_no_reexecution(self):
        application, architecture, mapping, profile = self._one_node_setup(0.0)
        decision = ReExecutionOpt().optimize(application, architecture, mapping, profile)
        assert decision is not None
        assert decision.reexecutions == {"N1": 0}

    def test_goal_unreachable_within_cap_returns_none(self):
        # A 50% failure probability cannot reach 1-1e-5 per hour with only two
        # allowed re-executions.
        application, architecture, mapping, profile = self._one_node_setup(0.5)
        optimizer = ReExecutionOpt(max_reexecutions_per_node=2)
        assert optimizer.optimize(application, architecture, mapping, profile) is None

    def test_budget_grows_with_failure_probability(self):
        small = self._one_node_setup(1e-6)
        large = self._one_node_setup(1e-3)
        k_small = ReExecutionOpt().optimize(*small).reexecutions["N1"]
        k_large = ReExecutionOpt().optimize(*large).reexecutions["N1"]
        assert k_large >= k_small

    def test_reexecutions_prefer_less_reliable_node(self, fig1_app, fig1_prof, fig1_nodes):
        # Map P1/P2 on a highly hardened node and P3/P4 on a weak node: the
        # heuristic should spend its re-executions on the weak node first.
        n1, n2 = fig1_nodes
        architecture = Architecture(
            [Node("N1", n1, hardening=3), Node("N2", n2, hardening=1)]
        )
        mapping = ProcessMapping({"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"})
        decision = ReExecutionOpt().optimize(fig1_app, architecture, mapping, fig1_prof)
        assert decision is not None
        assert decision.reexecutions["N2"] > decision.reexecutions["N1"]

    def test_evaluate_reports_without_optimizing(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        optimizer = ReExecutionOpt()
        evaluation = optimizer.evaluate(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, {"N1": 0, "N2": 0}
        )
        assert not evaluation.meets_goal
        evaluation = optimizer.evaluate(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, {"N1": 1, "N2": 1}
        )
        assert evaluation.meets_goal

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            ReExecutionOpt(max_reexecutions_per_node=-1)
