"""Unit tests for the plain-text result rendering helpers."""

from __future__ import annotations

import pytest

from repro.experiments.results import format_bar_chart, format_table, percentages
from repro.experiments.synthetic import render_cost_table, render_hpd_sweep


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["a", 1.0], ["longer", 2.5]], title="My table"
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_without_title(self):
        text = format_table(["x"], [[1]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].strip() == "x"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.1" in text and "3.14159" not in text


class TestFormatBarChart:
    def test_bars_scale_with_value(self):
        text = format_bar_chart(
            {"HPD=5%": {"MIN": 50.0, "OPT": 100.0}}, width=10, title="chart"
        )
        lines = text.splitlines()
        assert lines[0] == "chart"
        min_line = next(line for line in lines if "MIN" in line)
        opt_line = next(line for line in lines if "OPT" in line)
        assert min_line.count("#") == 5
        assert opt_line.count("#") == 10

    def test_values_clamped(self):
        text = format_bar_chart({"g": {"X": 150.0}}, width=10)
        assert text.count("#") == 10


class TestPercentages:
    def test_conversion(self):
        assert percentages({"a": 3, "b": 1}, 4) == {"a": 75.0, "b": 25.0}

    def test_zero_total(self):
        assert percentages({"a": 3}, 0) == {"a": 0.0}


class TestSweepRendering:
    def test_render_hpd_sweep(self):
        sweep = {5.0: {"MIN": 76.0, "MAX": 71.0, "OPT": 94.0}}
        text = render_hpd_sweep(sweep, "Fig. 6a")
        assert "Fig. 6a" in text
        assert "MIN" in text and "OPT" in text
        assert "94.0" in text

    def test_render_cost_table(self):
        table = {5.0: {15.0: {"MIN": 76.0, "MAX": 35.0, "OPT": 92.0}}}
        text = render_cost_table(table, "Fig. 6b")
        assert "ArC" in text
        assert "92.0" in text
