"""Unit tests for the pessimistic rounding helpers."""

from __future__ import annotations

import pytest

from repro.utils.rounding import DEFAULT_DECIMALS, ceil_probability, floor_probability


class TestFloorProbability:
    def test_rounds_down_at_default_precision(self):
        assert floor_probability(0.123456789012345) == pytest.approx(0.12345678901, abs=1e-15)

    def test_keeps_exact_values_unchanged(self):
        assert floor_probability(0.5) == 0.5

    def test_matches_paper_no_fault_value(self):
        # Appendix A.2: (1 - 1.2e-5) * (1 - 1.3e-5) rounded down at 1e-11.
        raw = (1 - 1.2e-5) * (1 - 1.3e-5)
        assert floor_probability(raw) == pytest.approx(0.99997500015, abs=1e-12)

    def test_negative_noise_clamped_to_zero(self):
        assert floor_probability(-1e-18) == 0.0

    def test_above_one_clamped(self):
        assert floor_probability(1.0 + 1e-15) == 1.0

    def test_custom_precision(self):
        assert floor_probability(0.987654321, decimals=3) == pytest.approx(0.987)

    def test_zero(self):
        assert floor_probability(0.0) == 0.0

    def test_one(self):
        assert floor_probability(1.0) == 1.0


class TestCeilProbability:
    def test_rounds_up_at_default_precision(self):
        assert ceil_probability(1.23e-12) == pytest.approx(1e-11, abs=1e-18)

    def test_exact_multiple_of_quantum_unchanged(self):
        assert ceil_probability(4.8e-10) == pytest.approx(4.8e-10, abs=1e-20)

    def test_never_exceeds_one(self):
        assert ceil_probability(1.0) == 1.0
        assert ceil_probability(0.9999999999999) == 1.0

    def test_negative_noise_clamped_to_zero(self):
        assert ceil_probability(-1e-20) == 0.0

    def test_custom_precision(self):
        assert ceil_probability(0.1234, decimals=2) == pytest.approx(0.13)

    def test_ceil_is_at_least_value(self):
        for value in (1e-13, 3.7e-9, 0.12345678901234, 0.5):
            assert ceil_probability(value) >= value

    def test_floor_is_at_most_value(self):
        for value in (1e-13, 3.7e-9, 0.12345678901234, 0.5):
            assert floor_probability(value) <= value


def test_default_decimals_matches_paper():
    assert DEFAULT_DECIMALS == 11
