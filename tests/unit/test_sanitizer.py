"""Unit tests for the runtime determinism sanitizer.

The sanitizer only records events whose call stack contains a ``repro.*``
frame (third-party and interpreter-internal noise is dropped), so the tests
route triggering calls through a synthetic module registered under the
``repro.`` namespace.
"""

from __future__ import annotations

import pickle
import sys
import types
from concurrent.futures import ProcessPoolExecutor
from decimal import Decimal

import numpy as np
import pytest

from repro.api.report import iter_non_json_native
from repro.lint.sanitizer import (
    SANITIZE_ENV,
    DeterminismSanitizer,
    active_sanitizer,
    env_requests_sanitizer,
)

# ----------------------------------------------------------------------
# a call trampoline whose frame claims a repro.* module
# ----------------------------------------------------------------------
_FIXTURE = types.ModuleType("repro._sanitizer_fixture")
sys.modules["repro._sanitizer_fixture"] = _FIXTURE
exec(
    compile(
        "def call(fn, *args, **kwargs):\n    return fn(*args, **kwargs)\n",
        "<repro-sanitizer-fixture>",
        "exec",
    ),
    _FIXTURE.__dict__,
)
#: Runs ``fn`` one repro-frame deep, so the sanitizer attributes the event.
from_repro = _FIXTURE.call


def rules_of(sanitizer: DeterminismSanitizer) -> set:
    return {violation.rule for violation in sanitizer.violations}


class TestLifecycle:
    def test_install_uninstall_restores_patches(self):
        original = np.random.default_rng
        with DeterminismSanitizer() as sanitizer:
            assert active_sanitizer() is sanitizer
            assert np.random.default_rng is not original
        assert active_sanitizer() is None
        assert np.random.default_rng is original

    def test_second_install_is_rejected(self):
        with DeterminismSanitizer():
            with pytest.raises(RuntimeError):
                DeterminismSanitizer().install()

    def test_env_opt_in_parsing(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert not env_requests_sanitizer()
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert env_requests_sanitizer()
        monkeypatch.setenv(SANITIZE_ENV, "0")
        assert not env_requests_sanitizer()


class TestSeededRng:
    def test_seedless_default_rng_records_r004(self):
        with DeterminismSanitizer() as sanitizer:
            from_repro(np.random.default_rng)
        assert rules_of(sanitizer) == {"R004"}
        (violation,) = sanitizer.violations
        assert "seedless numpy.random.default_rng()" in violation.message
        assert violation.module == "repro._sanitizer_fixture"

    def test_seeded_default_rng_is_silent(self):
        with DeterminismSanitizer() as sanitizer:
            rng = from_repro(np.random.default_rng, 42)
            from_repro(rng.random)
        assert sanitizer.violations == []

    def test_global_state_call_records_r004(self):
        import random

        with DeterminismSanitizer() as sanitizer:
            from_repro(random.random)
        assert rules_of(sanitizer) == {"R004"}
        assert "random.random()" in sanitizer.violations[0].message

    def test_events_without_repro_frame_are_dropped(self):
        with DeterminismSanitizer() as sanitizer:
            np.random.default_rng()  # no repro.* frame on this stack
        assert sanitizer.violations == []


class TestPoolBoundary:
    def test_unpicklable_submission_records_r006(self):
        with DeterminismSanitizer() as sanitizer:
            with ProcessPoolExecutor(max_workers=1) as pool:
                future = from_repro(pool.submit, len, [lambda: None])
                # Local callables fail with AttributeError, other types
                # with PicklingError — either way the task dies at the
                # boundary while the sanitizer records the hazard.
                with pytest.raises((pickle.PicklingError, AttributeError)):
                    future.result()
        assert "R006" in rules_of(sanitizer)
        assert sanitizer.counters["unpicklable_pool_payloads"] == 1

    def test_shared_handle_in_submission_records_r006(self):
        from repro.engine.cache import MemoCache

        with DeterminismSanitizer() as sanitizer:
            with ProcessPoolExecutor(max_workers=1) as pool:
                from_repro(pool.submit, id, MemoCache("decisions"))
        assert any(
            "MemoCache handle" in violation.message
            for violation in sanitizer.violations
        )

    def test_scalar_submission_is_silent(self):
        with DeterminismSanitizer() as sanitizer:
            with ProcessPoolExecutor(max_workers=1) as pool:
                assert from_repro(pool.submit, len, (1, 2, 3)).result() == 3
        assert sanitizer.violations == []


class TestFingerprintEncoder:
    def test_unordered_key_material_records_r001(self):
        from repro.engine import fingerprint

        with DeterminismSanitizer() as sanitizer:
            with pytest.raises(TypeError):
                from_repro(fingerprint._canonical_encode, {"a", "b"})
        assert rules_of(sanitizer) == {"R001"}
        assert "unordered set" in sanitizer.violations[0].message

    def test_canonical_tuples_are_silent(self):
        from repro.engine import fingerprint

        with DeterminismSanitizer() as sanitizer:
            from_repro(fingerprint._canonical_encode, (1, "a", 2.5, None))
        assert sanitizer.violations == []


class TestCrossProcessMutation:
    def test_mutation_from_foreign_pid_records_r007(self, capsys):
        from repro.engine.cache import MemoCache

        with DeterminismSanitizer() as sanitizer:
            cache = from_repro(MemoCache, "decisions")
            # Simulate the fork: pretend the cache was born in another pid.
            sanitizer._birth_pids[id(cache)] = -1
            from_repro(cache.put, ("k",), {"v": 1})
        assert "R007" in rules_of(sanitizer)
        assert "MemoCache.put()" in sanitizer.violations[0].message
        assert "R007" in capsys.readouterr().err

    def test_same_pid_mutation_is_silent(self):
        from repro.engine.cache import MemoCache

        with DeterminismSanitizer() as sanitizer:
            cache = from_repro(MemoCache, "decisions")
            from_repro(cache.put, ("k",), {"v": 1})
        assert sanitizer.violations == []


class TestPayloadChecks:
    def test_non_json_payload_records_r008(self):
        with DeterminismSanitizer() as sanitizer:
            from_repro(
                sanitizer.check_payload,
                {"cost": Decimal("12.5"), "ok": 3},
                "payload",
            )
        assert rules_of(sanitizer) == {"R008"}
        assert "Decimal at payload.cost" in sanitizer.violations[0].message

    def test_check_report_walks_json_facing_fields(self):
        with DeterminismSanitizer() as sanitizer:
            from_repro(
                sanitizer.check_report,
                {"results": {"raw": {1, 2}}, "timings": {"wall": 0.5}},
                "fig6a",
            )
        assert rules_of(sanitizer) == {"R008"}
        assert "report[fig6a].results.raw" in sanitizer.violations[0].message

    def test_native_payload_is_silent(self):
        with DeterminismSanitizer() as sanitizer:
            from_repro(
                sanitizer.check_payload,
                {"acceptance": {"20": 85.0}, "n": 3, "ok": True, "none": None},
                "payload",
            )
        assert sanitizer.violations == []

    def test_report_rendering(self):
        with DeterminismSanitizer() as sanitizer:
            from_repro(sanitizer.check_payload, {"b": b"raw"}, "payload")
        report = sanitizer.report()
        assert len(report.violations) == 1
        assert report.counters["non_json_payload_values"] == 1
        assert "1 violation(s)" in report.format_text()
        payload = report.as_dict()
        assert payload["violations"][0]["rule"] == "R008"


class TestIterNonJsonNative:
    def test_finds_offenders_with_paths(self):
        offenders = dict(
            iter_non_json_native(
                {"a": [1, {"b": Decimal("2")}], "c": (3,), 4: "key"}
            )
        )
        assert "$.a[1].b" in offenders
        assert "$.c" in offenders  # tuples are not JSON-native post-dump
        assert "$.<key 4>" in offenders

    def test_native_tree_yields_nothing(self):
        assert list(iter_non_json_native({"a": [1, 2.5, "s", None, True]})) == []
