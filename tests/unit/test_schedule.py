"""Unit tests for the Schedule data structure."""

from __future__ import annotations

import pytest

from repro.core.exceptions import SchedulingError
from repro.scheduling.schedule import Schedule, ScheduledMessage, ScheduledProcess


def _simple_schedule() -> Schedule:
    processes = [
        ScheduledProcess("P1", "N1", 0.0, 75.0),
        ScheduledProcess("P2", "N1", 75.0, 165.0),
        ScheduledProcess("P3", "N2", 85.0, 145.0),
        ScheduledProcess("P4", "N2", 175.0, 250.0),
    ]
    messages = [
        ScheduledMessage("m2", "P1", "P3", "N1", "N2", 75.0, 85.0),
        ScheduledMessage("m3", "P2", "P4", "N1", "N2", 165.0, 175.0),
    ]
    return Schedule(
        processes=processes,
        messages=messages,
        node_recovery_slack={"N1": 105.0, "N2": 90.0},
        reexecutions={"N1": 1, "N2": 1},
        hardening={"N1": 2, "N2": 2},
    )


class TestScheduleQueries:
    def test_entry_lookup(self):
        schedule = _simple_schedule()
        assert schedule.entry("P2").finish == 165.0
        assert schedule.message_entry("m2").start == 75.0
        assert schedule.has_message("m3")
        assert not schedule.has_message("m9")

    def test_missing_entries_raise(self):
        schedule = _simple_schedule()
        with pytest.raises(SchedulingError):
            schedule.entry("P9")
        with pytest.raises(SchedulingError):
            schedule.message_entry("m9")

    def test_processes_on_node_sorted_by_start(self):
        schedule = _simple_schedule()
        assert [entry.process for entry in schedule.processes_on("N1")] == ["P1", "P2"]
        assert schedule.processes_on("N3") == []

    def test_nodes_listing(self):
        assert set(_simple_schedule().nodes()) == {"N1", "N2"}

    def test_durations(self):
        schedule = _simple_schedule()
        assert schedule.entry("P1").duration == 75.0
        assert schedule.message_entry("m2").duration == 10.0

    def test_duplicate_process_entries_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule(
                processes=[
                    ScheduledProcess("P1", "N1", 0.0, 5.0),
                    ScheduledProcess("P1", "N1", 5.0, 10.0),
                ],
                messages=[],
                node_recovery_slack={},
                reexecutions={},
                hardening={},
            )


class TestScheduleLengths:
    def test_fault_free_length(self):
        assert _simple_schedule().fault_free_length == 250.0

    def test_node_completion_and_worst_case(self):
        schedule = _simple_schedule()
        assert schedule.node_completion("N1") == 165.0
        assert schedule.worst_case_node_completion("N1") == 270.0
        assert schedule.worst_case_node_completion("N2") == 340.0
        assert schedule.node_completion("N3") == 0.0

    def test_length_is_worst_node(self):
        # This is the Fig. 4a schedule: worst-case length 340 ms.
        assert _simple_schedule().length == 340.0

    def test_meets_deadline(self):
        schedule = _simple_schedule()
        assert schedule.meets_deadline(360.0)
        assert not schedule.meets_deadline(300.0)

    def test_empty_schedule_has_zero_length(self):
        schedule = Schedule([], [], {}, {}, {})
        assert schedule.length == 0.0
        assert schedule.fault_free_length == 0.0


class TestScheduleValidation:
    def test_valid_schedule_passes(self):
        _simple_schedule().validate()

    def test_overlapping_processes_detected(self):
        schedule = Schedule(
            processes=[
                ScheduledProcess("P1", "N1", 0.0, 10.0),
                ScheduledProcess("P2", "N1", 5.0, 15.0),
            ],
            messages=[],
            node_recovery_slack={},
            reexecutions={},
            hardening={},
        )
        with pytest.raises(SchedulingError, match="overlap"):
            schedule.validate()

    def test_overlapping_messages_detected(self):
        schedule = Schedule(
            processes=[ScheduledProcess("P1", "N1", 0.0, 10.0)],
            messages=[
                ScheduledMessage("m1", "P1", "P2", "N1", "N2", 0.0, 5.0),
                ScheduledMessage("m2", "P1", "P3", "N1", "N2", 3.0, 8.0),
            ],
            node_recovery_slack={},
            reexecutions={},
            hardening={},
        )
        with pytest.raises(SchedulingError, match="overlap"):
            schedule.validate()

    def test_negative_window_detected(self):
        schedule = Schedule(
            processes=[ScheduledProcess("P1", "N1", 10.0, 5.0)],
            messages=[],
            node_recovery_slack={},
            reexecutions={},
            hardening={},
        )
        with pytest.raises(SchedulingError, match="invalid window"):
            schedule.validate()


class TestGanttRendering:
    def test_gantt_text_mentions_nodes_and_length(self):
        text = _simple_schedule().as_gantt_text()
        assert "N1" in text and "N2" in text
        assert "bus" in text
        assert "340.0" in text
        assert "k=1" in text


class TestScheduleHashing:
    """Value hash consistent with value __eq__ (schedules as dict/set keys)."""

    def test_equal_schedules_hash_equal(self):
        first, second = _simple_schedule(), _simple_schedule()
        assert first == second
        assert first is not second
        assert hash(first) == hash(second)

    def test_set_deduplicates_equal_schedules(self):
        assert len({_simple_schedule(), _simple_schedule()}) == 1

    def test_usable_as_dict_key(self):
        table = {_simple_schedule(): "cached"}
        assert table[_simple_schedule()] == "cached"

    def test_different_schedules_hash_differently(self):
        # Not guaranteed by the hash contract, but a collision across this
        # change would point at a degenerate hash implementation.
        other = _simple_schedule()
        other.node_recovery_slack["N1"] = 999.0
        assert hash(other) != hash(_simple_schedule())

    def test_hash_is_cached_before_mutation(self):
        # Immutability is by convention; hashing snapshots the first call.
        schedule = _simple_schedule()
        before = hash(schedule)
        schedule.node_recovery_slack["N1"] = 999.0
        assert hash(schedule) == before


class TestZeroDurationMessageValidation:
    """A zero-duration message occupies no bus time (half-open [t, t)): the
    bus grants it inside other windows (`Bus._conflicts` finds no conflict),
    so validate must not flag it as an overlap — nor let it mask a real one.
    """

    def _schedule_with_messages(self, messages):
        return Schedule(
            processes=[ScheduledProcess("P1", "N1", 0.0, 5.0)],
            messages=messages,
            node_recovery_slack={"N1": 0.0},
            reexecutions={"N1": 0},
            hardening={"N1": 1},
        )

    def test_zero_duration_inside_another_window_is_valid(self):
        schedule = self._schedule_with_messages(
            [
                ScheduledMessage("m1", "P1", "P2", "N1", "N2", 5.0, 7.0),
                ScheduledMessage("m2", "P1", "P3", "N1", "N2", 5.0, 5.0),
            ]
        )
        schedule.validate()

    def test_zero_duration_does_not_mask_a_real_overlap(self):
        schedule = self._schedule_with_messages(
            [
                ScheduledMessage("m1", "P1", "P2", "N1", "N2", 5.0, 7.0),
                ScheduledMessage("m2", "P1", "P3", "N1", "N2", 5.0, 5.0),
                ScheduledMessage("m3", "P1", "P4", "N1", "N2", 6.0, 8.0),
            ]
        )
        with pytest.raises(SchedulingError, match="overlap on the bus"):
            schedule.validate()
