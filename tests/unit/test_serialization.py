"""Unit tests for JSON serialization and DOT export."""

from __future__ import annotations

import json

import pytest

from repro.core.exceptions import ModelError
from repro.core.mapping_model import ProcessMapping
from repro.core.evaluation import DesignResult, infeasible_result
from repro.io.dot import schedule_to_dot, task_graph_to_dot
from repro.io.serialization import (
    application_from_dict,
    application_to_dict,
    design_result_to_dict,
    load_problem,
    node_types_from_dict,
    node_types_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_problem,
)
from repro.experiments.motivational import fig1_node_types


class TestApplicationRoundTrip:
    def test_round_trip_preserves_structure(self, fig1_app):
        data = application_to_dict(fig1_app)
        rebuilt = application_from_dict(data)
        assert rebuilt.name == fig1_app.name
        assert rebuilt.deadline == fig1_app.deadline
        assert rebuilt.reliability_goal == fig1_app.reliability_goal
        assert rebuilt.process_names() == fig1_app.process_names()
        assert len(rebuilt.messages()) == len(fig1_app.messages())
        assert rebuilt.recovery_overhead_of("P1") == fig1_app.recovery_overhead_of("P1")

    def test_round_trip_is_json_compatible(self, fig1_app):
        text = json.dumps(application_to_dict(fig1_app))
        rebuilt = application_from_dict(json.loads(text))
        assert rebuilt.number_of_processes() == 4

    def test_missing_key_raises_model_error(self):
        with pytest.raises(ModelError):
            application_from_dict({"name": "x"})


class TestNodeTypeRoundTrip:
    def test_round_trip(self):
        node_types = list(fig1_node_types())
        data = node_types_to_dict(node_types)
        rebuilt = node_types_from_dict(data)
        assert [nt.name for nt in rebuilt] == ["N1", "N2"]
        assert rebuilt[0].cost(3) == 64.0
        assert rebuilt[1].speed_factor == pytest.approx(1.0)

    def test_missing_key_raises(self):
        with pytest.raises(ModelError):
            node_types_from_dict([{"name": "N1"}])


class TestProfileRoundTrip:
    def test_round_trip(self, fig1_prof):
        data = profile_to_dict(fig1_prof)
        rebuilt = profile_from_dict(data)
        assert len(rebuilt) == len(fig1_prof)
        assert rebuilt.wcet("P1", "N1", 2) == fig1_prof.wcet("P1", "N1", 2)
        assert rebuilt.failure_probability("P4", "N2", 3) == pytest.approx(1.3e-10)

    def test_missing_key_raises(self):
        with pytest.raises(ModelError):
            profile_from_dict([{"process": "P1"}])


class TestProblemFiles:
    def test_save_and_load_problem(self, tmp_path, fig1_app, fig1_prof):
        path = tmp_path / "problem.json"
        save_problem(path, fig1_app, list(fig1_node_types()), fig1_prof)
        application, node_types, profile = load_problem(path)
        assert application.name == fig1_app.name
        assert [nt.name for nt in node_types] == ["N1", "N2"]
        assert len(profile) == len(fig1_prof)

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
        with pytest.raises(ModelError):
            load_problem(path)


class TestDesignResultSerialization:
    def test_feasible_result(self):
        result = DesignResult(
            strategy="OPT",
            application="app",
            feasible=True,
            node_types={"N1": "N1"},
            hardening={"N1": 2},
            reexecutions={"N1": 1},
            mapping=ProcessMapping({"P1": "N1"}),
            schedule_length=100.0,
            deadline=200.0,
            cost=32.0,
            meets_reliability=True,
        )
        data = design_result_to_dict(result)
        assert data["mapping"] == {"P1": "N1"}
        assert data["cost"] == 32.0
        json.dumps(data)

    def test_infeasible_result(self):
        data = design_result_to_dict(infeasible_result("MIN", "app", "nope"))
        assert data["feasible"] is False
        assert data["mapping"] is None


class TestDotExport:
    def test_task_graph_dot_contains_nodes_and_edges(self, fig1_app):
        dot = task_graph_to_dot(fig1_app.graphs[0])
        assert dot.startswith("digraph")
        for name in ("P1", "P2", "P3", "P4"):
            assert f'"{name}"' in dot
        assert '"P1" -> "P2"' in dot

    def test_task_graph_dot_with_execution_times(self, fig1_app, fig1_prof):
        dot = task_graph_to_dot(
            fig1_app.graphs[0], execution_time=lambda p: fig1_prof.wcet(p, "N1", 1)
        )
        assert "60.0 ms" in dot

    def test_schedule_dot(self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping):
        from repro.scheduling.list_scheduler import ListScheduler

        schedule = ListScheduler().schedule(
            fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof, {"N1": 1, "N2": 1}
        )
        dot = schedule_to_dot(schedule)
        assert "cluster_0" in dot
        assert "bus" in dot
        assert "P4" in dot
