"""Job queue semantics of repro.serve: validation, backpressure, specs."""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.core.exceptions import ModelError
from repro.serve.jobs import Job, JobManager, ServeConfig
from repro.serve.progress import iter_new_lines
from repro.serve.protocol import HttpError


def _manager(tmp_path, **overrides) -> JobManager:
    """A started-but-consumerless manager: submissions queue, nothing runs.

    start() spins up the process pool, which these tests never need — the
    spool/store directories and the queue are enough to exercise
    validation and backpressure, so the private fields are seeded directly.
    """
    config = ServeConfig(spool_dir=tmp_path / "spool", **overrides)
    manager = JobManager(config)
    manager._spool_dir = config.spool_dir
    manager._spool_dir.mkdir(parents=True, exist_ok=True)
    manager._store_dir = config.spool_dir / "store"
    manager._store_dir.mkdir(parents=True, exist_ok=True)
    manager._queue = asyncio.Queue(maxsize=config.queue_size)
    return manager


# ----------------------------------------------------------------------
# ServeConfig validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"workers": 0},
        {"queue_size": 0},
        {"job_timeout_seconds": 0.0},
        {"job_timeout_seconds": -1.0},
    ],
)
def test_serve_config_rejects_degenerate_values(kwargs):
    with pytest.raises(ModelError):
        ServeConfig(**kwargs)


# ----------------------------------------------------------------------
# submission validation (all 400s happen at submit time, never later)
# ----------------------------------------------------------------------
def test_submit_validates_scenario_config_and_params(tmp_path):
    manager = _manager(tmp_path)
    for payload in [
        {},  # no scenario
        {"scenario": 7},  # wrong type
        {"scenario": "no-such-scenario"},
        {"scenario": "fig6a", "config": "not-a-dict"},
        {"scenario": "fig6a", "config": {"bogus_field": 1}},
        {"scenario": "fig6a", "config": {"preset": "no-such-preset"}},
        # fig6a declares no parameters, so any override is out of schema.
        {"scenario": "fig6a", "config": {"scenario_params": {"x": 1}}},
        # A family parameter outside its declared bounds.
        {"scenario": "synthetic-random", "config": {"scenario_params": {"n_processes": -3}}},
    ]:
        with pytest.raises(HttpError) as info:
            manager.submit(payload)
        assert info.value.status == 400
    assert manager.jobs == {}


def test_submit_enqueues_and_spools_the_queued_event(tmp_path):
    manager = _manager(tmp_path)
    job = manager.submit({"scenario": "fig6a", "config": {"preset": "fast"}})
    assert job.job_id == "job-000000"
    assert job.state == "queued"
    assert manager.queue_position(job) == 0
    # The server owns persistence: the shared store is forced in.
    assert job.config.cache_dir == manager.store_dir
    assert job.config.output is None
    lines, _ = iter_new_lines(job.events_path, 0)
    events = [__import__("json").loads(line) for line in lines]
    assert [event["event"] for event in events] == ["job_queued"]
    assert events[0]["queue_position"] == 0


def test_submit_applies_backpressure_with_retry_after(tmp_path):
    manager = _manager(tmp_path, queue_size=2, job_timeout_seconds=30.0)
    payload = {"scenario": "fig6a", "config": {"preset": "fast"}}
    manager.submit(payload)
    manager.submit(payload)
    with pytest.raises(HttpError) as info:
        manager.submit(payload)
    assert info.value.status == 429
    assert info.value.retry_after == 30
    # The rejected job never entered the registry.
    assert len(manager.jobs) == 2


def test_queue_positions_are_fifo_and_cleared_once_running(tmp_path):
    manager = _manager(tmp_path)
    payload = {"scenario": "fig6a", "config": {}}
    first = manager.submit(payload)
    second = manager.submit(payload)
    assert manager.queue_position(first) == 0
    assert manager.queue_position(second) == 1
    first.state = "running"
    assert manager.queue_position(first) is None
    assert manager.queue_position(second) == 0


def test_get_unknown_job_is_a_404(tmp_path):
    manager = _manager(tmp_path)
    with pytest.raises(HttpError) as info:
        manager.get("job-999999")
    assert info.value.status == 404


# ----------------------------------------------------------------------
# the pool-boundary spec contract (R006 by construction)
# ----------------------------------------------------------------------
def test_job_spec_is_scalar_and_picklable(tmp_path):
    manager = _manager(tmp_path)
    job = manager.submit(
        {
            "scenario": "synthetic-random",
            "config": {"preset": "fast", "scenario_params": {"n_processes": 20, "seed": 3}},
        }
    )
    spec = job.spec()
    # Picklable by construction — and round-trips without loss.
    assert pickle.loads(pickle.dumps(spec)) == spec
    # Nothing but JSON-native scalars/containers crosses the boundary.
    import json

    assert json.loads(json.dumps(spec)) == spec
    assert spec["single_flight"] is True
    assert spec["config"]["cache_dir"] == str(manager.store_dir)


def test_state_counts_cover_every_state(tmp_path):
    manager = _manager(tmp_path)
    payload = {"scenario": "fig6a", "config": {}}
    jobs = [manager.submit(payload) for _ in range(4)]
    jobs[1].state = "running"
    jobs[2].state = "done"
    jobs[3].state = "failed"
    assert manager.state_counts() == {
        "queued": 1,
        "running": 1,
        "done": 1,
        "failed": 1,
    }


def test_describe_reports_the_lifecycle_record(tmp_path):
    manager = _manager(tmp_path)
    job = manager.submit({"scenario": "fig6a", "config": {}})
    record = job.describe(queue_position=0)
    assert record["id"] == job.job_id
    assert record["scenario"] == "fig6a"
    assert record["state"] == "queued"
    assert record["queue_position"] == 0
    assert record["error"] is None
    assert record["config"]["cache_dir"] == str(manager.store_dir)
