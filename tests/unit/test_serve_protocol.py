"""HTTP protocol layer of repro.serve: parsing, encoding, canonicalization."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.protocol import (
    MAX_BODY_BYTES,
    HttpError,
    Request,
    error_response,
    event_line,
    json_response,
    read_request,
    stream_head,
)


def _parse(raw: bytes):
    """Drive read_request against an in-memory StreamReader."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------
def test_parses_request_line_headers_and_query():
    request = _parse(
        b"GET /jobs/job-000001?verbose=1&tail= HTTP/1.1\r\n"
        b"Host: localhost\r\n"
        b"X-Custom:  spaced value \r\n"
        b"\r\n"
    )
    assert request.method == "GET"
    assert request.path == "/jobs/job-000001"
    assert request.query == {"verbose": "1", "tail": ""}
    assert request.headers["host"] == "localhost"
    assert request.headers["x-custom"] == "spaced value"
    assert request.body == b""


def test_reads_content_length_body():
    body = json.dumps({"scenario": "fig6a"}).encode()
    request = _parse(
        b"POST /jobs HTTP/1.1\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
        + body
    )
    assert request.method == "POST"
    assert request.json_body() == {"scenario": "fig6a"}


def test_clean_eof_before_any_bytes_returns_none():
    assert _parse(b"") is None


@pytest.mark.parametrize(
    "raw, status",
    [
        (b"GARBAGE\r\n\r\n", 400),  # malformed request line
        (b"GET /x SPDY/3\r\n\r\n", 400),  # unsupported protocol token
        (b"GET /x HTTP/1.1\r\nBadHeader\r\n\r\n", 400),  # no colon
        (b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
        (b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
        (b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 400),  # short body
        (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
        (
            b"POST /x HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode(),
            413,
        ),
        (b"GET /x HTTP/1.1\r\nTrunc", 400),  # EOF mid-head
    ],
)
def test_malformed_requests_raise_http_errors(raw, status):
    with pytest.raises(HttpError) as info:
        _parse(raw)
    assert info.value.status == status


def test_json_body_rejects_non_object_payloads():
    request = Request(method="POST", path="/jobs", body=b"[1, 2]")
    with pytest.raises(HttpError) as info:
        request.json_body()
    assert info.value.status == 400
    with pytest.raises(HttpError):
        Request(method="POST", path="/jobs", body=b"").json_body()
    with pytest.raises(HttpError):
        Request(method="POST", path="/jobs", body=b"{not json").json_body()


# ----------------------------------------------------------------------
# response encoding + canonicalization (the R008 serve roots)
# ----------------------------------------------------------------------
def _split_response(raw: bytes):
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.decode("latin-1").split("\r\n"), body


def test_json_response_frames_a_canonical_body():
    numpy = pytest.importorskip("numpy")
    lines, body = _split_response(
        json_response({"count": numpy.int64(3), "values": (1, 2)})
    )
    assert lines[0] == "HTTP/1.1 200 OK"
    assert "Content-Type: application/json" in lines
    assert f"Content-Length: {len(body)}" in lines
    assert "Connection: close" in lines
    # Canonicalized: the numpy scalar and the tuple became JSON natives.
    assert json.loads(body) == {"count": 3, "values": [1, 2]}


def test_json_response_carries_status_and_extra_headers():
    lines, body = _split_response(
        json_response({"ok": False}, 202, {"Location": "/jobs/job-000000"})
    )
    assert lines[0] == "HTTP/1.1 202 Accepted"
    assert "Location: /jobs/job-000000" in lines


def test_event_line_is_one_canonical_json_line():
    numpy = pytest.importorskip("numpy")
    line = event_line({"event": "setting_progress", "hits": numpy.int64(7)})
    assert line.endswith(b"\n")
    assert line.count(b"\n") == 1
    assert json.loads(line) == {"event": "setting_progress", "hits": 7}


def test_error_response_renders_retry_after():
    lines, body = _split_response(
        error_response(HttpError(429, "queue full", retry_after=7))
    )
    assert lines[0].startswith("HTTP/1.1 429")
    assert "Retry-After: 7" in lines
    assert json.loads(body) == {"error": "queue full", "status": 429}


def test_stream_head_has_no_content_length():
    head = stream_head().decode("latin-1")
    assert "Content-Length" not in head
    assert "application/x-ndjson" in head
    assert "Connection: close" in head
