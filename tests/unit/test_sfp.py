"""Unit tests for the System Failure Probability analysis (Appendix A)."""

from __future__ import annotations

import math

import pytest

from repro.core.architecture import Architecture, Node
from repro.core.exceptions import ModelError
from repro.core.mapping_model import ProcessMapping
from repro.core.sfp import (
    SFPAnalysis,
    complete_homogeneous_sum,
    enumerate_fault_scenarios,
    meets_reliability_goal,
    probability_exactly,
    probability_exceeds,
    probability_no_fault,
    reliability_over_time_unit,
    system_failure_probability,
)


class TestProbabilityNoFault:
    def test_empty_list_gives_one(self):
        assert probability_no_fault([]) == 1.0

    def test_single_process(self):
        assert probability_no_fault([0.1]) == pytest.approx(0.9)

    def test_paper_value(self):
        assert probability_no_fault([1.2e-5, 1.3e-5]) == pytest.approx(
            0.99997500015, abs=1e-12
        )

    def test_rounded_down(self):
        exact = (1 - 1.2e-5) * (1 - 1.3e-5)
        assert probability_no_fault([1.2e-5, 1.3e-5]) <= exact

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            probability_no_fault([1.5])


class TestCompleteHomogeneousSum:
    def test_zero_faults_is_one(self):
        assert complete_homogeneous_sum([0.1, 0.2], 0) == 1.0

    def test_empty_probabilities_with_faults_is_zero(self):
        assert complete_homogeneous_sum([], 3) == 0.0

    def test_one_fault_is_plain_sum(self):
        assert complete_homogeneous_sum([0.1, 0.2, 0.3], 1) == pytest.approx(0.6)

    def test_two_faults_two_processes(self):
        # Multisets of size 2 over {a, b}: aa, ab, bb.
        a, b = 0.1, 0.2
        expected = a * a + a * b + b * b
        assert complete_homogeneous_sum([a, b], 2) == pytest.approx(expected)

    def test_matches_enumeration_reference(self):
        probabilities = [0.01, 0.02, 0.03, 0.04]
        for faults in range(5):
            dp_value = complete_homogeneous_sum(probabilities, faults)
            reference = sum(enumerate_fault_scenarios(probabilities, faults))
            assert dp_value == pytest.approx(reference, rel=1e-12)

    def test_negative_faults_rejected(self):
        with pytest.raises(ModelError):
            complete_homogeneous_sum([0.1], -1)


class TestEnumerateFaultScenarios:
    def test_number_of_scenarios_is_multiset_coefficient(self):
        # Combinations with repetition of f on m: C(m + f - 1, f).
        probabilities = [0.1, 0.2, 0.3]
        scenarios = enumerate_fault_scenarios(probabilities, 3)
        assert len(scenarios) == math.comb(3 + 3 - 1, 3)

    def test_paper_example_three_faults_on_three_processes(self):
        # The Appendix A example: 3 faults over P1, P2, P3 gives C(5,3) = 10.
        scenarios = enumerate_fault_scenarios([1e-3, 1e-3, 1e-3], 3)
        assert len(scenarios) == 10


class TestProbabilityExactly:
    def test_paper_value_one_fault(self):
        assert probability_exactly([1.2e-5, 1.3e-5], 1) == pytest.approx(
            0.00002499937, abs=1e-12
        )

    def test_zero_faults_equals_no_fault(self):
        probabilities = [0.01, 0.05]
        assert probability_exactly(probabilities, 0) == probability_no_fault(probabilities)

    def test_decreasing_in_faults_for_small_probabilities(self):
        probabilities = [1e-4, 2e-4, 3e-4]
        values = [probability_exactly(probabilities, f) for f in range(1, 5)]
        assert values == sorted(values, reverse=True)


class TestProbabilityExceeds:
    def test_paper_values(self):
        probabilities = [1.2e-5, 1.3e-5]
        assert probability_exceeds(probabilities, 0) == pytest.approx(2.499985e-05, abs=1e-11)
        assert probability_exceeds(probabilities, 1) == pytest.approx(4.8e-10, abs=1e-12)

    def test_zero_for_fault_free_processes(self):
        assert probability_exceeds([0.0, 0.0], 0) == 0.0

    def test_monotone_decreasing_in_budget(self):
        probabilities = [1e-3, 2e-3, 3e-3]
        values = [probability_exceeds(probabilities, k) for k in range(5)]
        assert values == sorted(values, reverse=True)

    def test_single_process_budget_zero_is_its_probability(self):
        assert probability_exceeds([0.25], 0) == pytest.approx(0.25)

    def test_negative_budget_rejected(self):
        with pytest.raises(ModelError):
            probability_exceeds([0.1], -1)

    def test_empty_node_never_fails(self):
        assert probability_exceeds([], 0) == 0.0


class TestSystemFailureProbability:
    def test_paper_union_value(self):
        assert system_failure_probability([4.8e-10, 4.8e-10]) == pytest.approx(
            9.6e-10, abs=1e-13
        )

    def test_single_node_is_identity(self):
        assert system_failure_probability([1e-6]) == pytest.approx(1e-6)

    def test_empty_system_never_fails(self):
        assert system_failure_probability([]) == 0.0

    def test_union_at_least_max_component(self):
        values = [1e-6, 5e-7, 2e-6]
        assert system_failure_probability(values) >= max(values)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            system_failure_probability([2.0])


class TestReliabilityOverTimeUnit:
    def test_paper_k1_reliability(self):
        reliability = reliability_over_time_unit(9.6e-10, 3.6e6, 360.0)
        assert reliability == pytest.approx(0.99999040005, abs=1e-9)

    def test_paper_k0_reliability_fails_goal(self):
        reliability = reliability_over_time_unit(4.999908e-05, 3.6e6, 360.0)
        assert reliability == pytest.approx(0.6065, abs=1e-3)
        assert not meets_reliability_goal(4.999908e-05, 1 - 1e-5, 3.6e6, 360.0)

    def test_meets_goal_boundary(self):
        assert meets_reliability_goal(0.0, 1.0, 3.6e6, 100.0)

    def test_zero_failure_gives_perfect_reliability(self):
        assert reliability_over_time_unit(0.0, 3.6e6, 1.0) == 1.0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            reliability_over_time_unit(0.1, 3.6e6, 0.0)


class TestSFPAnalysis:
    def test_node_failure_probabilities_respect_hardening(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        analysis = SFPAnalysis(fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof)
        node1 = fig4a_architecture.node("N1")
        assert analysis.node_failure_probabilities(node1) == pytest.approx([1.2e-5, 1.3e-5])
        node1.hardening = 3
        assert analysis.node_failure_probabilities(node1) == pytest.approx(
            [1.2e-10, 1.3e-10]
        )

    def test_evaluate_appendix_example(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        analysis = SFPAnalysis(fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof)
        report_k0 = analysis.evaluate({"N1": 0, "N2": 0})
        report_k1 = analysis.evaluate({"N1": 1, "N2": 1})
        assert not report_k0.meets_goal
        assert report_k1.meets_goal
        assert report_k1.system_failure_per_iteration == pytest.approx(9.6e-10, abs=1e-13)
        assert report_k1.reliability_over_time_unit == pytest.approx(0.9999904, abs=1e-7)
        assert report_k1.reexecutions == {"N1": 1, "N2": 1}
        assert report_k1.margin() > 0 > report_k0.margin()

    def test_missing_budget_defaults_to_zero(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        analysis = SFPAnalysis(fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof)
        report = analysis.evaluate({})
        assert report.reexecutions == {"N1": 0, "N2": 0}

    def test_negative_budget_rejected(
        self, fig1_app, fig1_prof, fig4a_architecture, fig4a_mapping
    ):
        analysis = SFPAnalysis(fig1_app, fig4a_architecture, fig4a_mapping, fig1_prof)
        with pytest.raises(ModelError):
            analysis.evaluate({"N1": -1})

    def test_empty_node_contributes_nothing(self, fig1_app, fig1_prof, fig4a_architecture):
        mapping = ProcessMapping(
            {"P1": "N1", "P2": "N1", "P3": "N1", "P4": "N1"}
        )
        analysis = SFPAnalysis(fig1_app, fig4a_architecture, mapping, fig1_prof)
        node2 = fig4a_architecture.node("N2")
        assert analysis.node_exceedance(node2, 0) == 0.0
