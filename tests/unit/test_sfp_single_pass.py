"""Property-style tests for the single-pass ``probability_exceeds`` rewrite.

The single-pass implementation reads all of ``h_1 .. h_k`` off one DP table
instead of rebuilding ``probability_no_fault`` and the table for every fault
count.  Two references pin it down:

* the *exact* reference re-composes formula (4) the way the original
  implementation did — ``1 - Pr(0) - sum_f floor(Pr(0) * h_f)`` with a fresh
  :func:`complete_homogeneous_sum` per fault count — and must agree **bit for
  bit** (the truncated DP prefix performs the identical float operations);
* the *enumeration* reference sums the exponential
  :func:`enumerate_fault_scenarios` multiset products and must agree up to
  floating-point reassociation.
"""

from __future__ import annotations

import random
from decimal import Decimal

import pytest

from repro.core.sfp import (
    complete_homogeneous_sum,
    enumerate_fault_scenarios,
    probability_exceeds,
    probability_no_fault,
)
from repro.utils.rounding import ceil_probability, floor_probability


def reference_exceeds(probabilities, reexecutions, decimals):
    """Formula (4) composed exactly as the pre-rewrite implementation did."""
    survival = Decimal(repr(probability_no_fault(probabilities, decimals)))
    for faults in range(1, reexecutions + 1):
        no_fault = probability_no_fault(probabilities, decimals)
        exactly = floor_probability(
            no_fault * complete_homogeneous_sum(probabilities, faults), decimals
        )
        survival += Decimal(repr(exactly))
    return ceil_probability(float(Decimal(1) - survival), decimals)


def random_probability_vectors(count, max_len=6, seed=20090420):
    rng = random.Random(seed)
    for _ in range(count):
        length = rng.randint(0, max_len)
        scale = rng.choice([1e-1, 1e-3, 1e-6, 1e-9])
        yield [rng.random() * scale for _ in range(length)]


class TestBitIdenticalWithReference:
    @pytest.mark.parametrize("decimals", [5, 9, 11])
    def test_matches_reference_composition_exactly(self, decimals):
        for probabilities in random_probability_vectors(40):
            for reexecutions in range(0, 6):
                assert probability_exceeds(
                    probabilities, reexecutions, decimals
                ) == reference_exceeds(probabilities, reexecutions, decimals), (
                    f"mismatch for probs={probabilities} k={reexecutions}"
                )

    def test_tuple_and_list_inputs_agree(self):
        probabilities = [1.2e-4, 3.4e-5, 5.6e-6]
        for reexecutions in range(4):
            assert probability_exceeds(
                tuple(probabilities), reexecutions
            ) == probability_exceeds(probabilities, reexecutions)

    def test_empty_probabilities(self):
        assert probability_exceeds([], 0) == 0.0
        assert probability_exceeds([], 3) == 0.0


class TestAgainstEnumeration:
    """The DP must match the exponential multiset enumeration of (2)/(3)."""

    @pytest.mark.parametrize("faults", [1, 2, 3, 4])
    def test_homogeneous_sum_matches_enumeration(self, faults):
        for probabilities in random_probability_vectors(20, max_len=5, seed=7):
            expected = sum(enumerate_fault_scenarios(probabilities, faults))
            assert complete_homogeneous_sum(probabilities, faults) == pytest.approx(
                expected, rel=1e-12, abs=1e-300
            )

    def test_exceedance_matches_enumeration_composition(self):
        # Large probabilities keep every term well above the rounding floor so
        # the enumeration reference is meaningful at full accuracy.
        rng = random.Random(99)
        for _ in range(20):
            probabilities = [rng.uniform(0.01, 0.3) for _ in range(rng.randint(1, 5))]
            for reexecutions in range(0, 4):
                no_fault = probability_no_fault(probabilities, 11)
                survival = Decimal(repr(no_fault))
                for faults in range(1, reexecutions + 1):
                    h_f = sum(enumerate_fault_scenarios(probabilities, faults))
                    survival += Decimal(repr(floor_probability(no_fault * h_f, 11)))
                expected = ceil_probability(float(Decimal(1) - survival), 11)
                assert probability_exceeds(probabilities, reexecutions, 11) == (
                    pytest.approx(expected, rel=1e-9, abs=1e-11)
                )
