"""Unit tests for the recovery-slack computations."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ModelError
from repro.scheduling.slack import naive_recovery_slack, shared_recovery_slack


class TestSharedRecoverySlack:
    def test_empty_node_has_no_slack(self):
        assert shared_recovery_slack([], 3) == 0.0

    def test_zero_budget_has_no_slack(self):
        assert shared_recovery_slack([(10.0, 1.0)], 0) == 0.0

    def test_single_process_matches_paper_formula(self):
        # Fig. 2a: k=2, t=30, mu=5 -> slack 2 * 35 = 70.
        assert shared_recovery_slack([(30.0, 5.0)], 2) == pytest.approx(70.0)

    def test_shared_slack_takes_worst_single_victim(self):
        pairs = [(75.0, 15.0), (90.0, 15.0)]
        assert shared_recovery_slack(pairs, 1) == pytest.approx(105.0)

    def test_grows_linearly_with_budget(self):
        pairs = [(10.0, 2.0), (20.0, 2.0)]
        assert shared_recovery_slack(pairs, 4) == pytest.approx(4 * 22.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ModelError):
            shared_recovery_slack([(10.0, 1.0)], -1)


class TestNaiveRecoverySlack:
    def test_sums_over_processes(self):
        pairs = [(75.0, 15.0), (90.0, 15.0)]
        assert naive_recovery_slack(pairs, 1) == pytest.approx(195.0)

    def test_never_smaller_than_shared(self):
        pairs = [(10.0, 1.0), (20.0, 2.0), (5.0, 0.5)]
        for budget in range(4):
            assert naive_recovery_slack(pairs, budget) >= shared_recovery_slack(pairs, budget)

    def test_equal_to_shared_for_single_process(self):
        pairs = [(42.0, 3.0)]
        assert naive_recovery_slack(pairs, 2) == shared_recovery_slack(pairs, 2)

    def test_zero_budget(self):
        assert naive_recovery_slack([(10.0, 1.0)], 0) == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ModelError):
            naive_recovery_slack([(10.0, 1.0)], -2)
