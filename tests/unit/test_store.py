"""Persistent design-point store: round trips, salting, eviction, corruption."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.reexecution import ReExecutionOpt
from repro.core.sfp import SFPAnalysis
from repro.engine import (
    DesignPointStore,
    EvaluationEngine,
    stable_context_fingerprint,
)
from repro.engine.store import code_version_salt
from repro.experiments.motivational import fig1_application, fig1_profile

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def context():
    return fig1_application(), fig1_profile()


def _engine_with_entries(context) -> EvaluationEngine:
    """A fresh engine with a few real memo entries in every SFP table."""
    application, profile = context
    engine = EvaluationEngine(application, profile)
    engine.node_no_fault((1.2e-5, 1.3e-5), 11)
    engine.node_exceedance((1.2e-5, 1.3e-5), 1, 11)
    engine.node_exceedance((1.2e-5, 1.3e-5), 2, 11)
    engine.system_failure((1e-9, 2e-9), 11)
    return engine


# ----------------------------------------------------------------------
# warm / persist round trips
# ----------------------------------------------------------------------
def test_round_trip_restores_entries_and_counts_disk_hits(tmp_path, context):
    application, profile = context
    store = DesignPointStore(tmp_path)
    first = _engine_with_entries(context)
    assert store.persist(first) > 0

    second = EvaluationEngine(application, profile)
    loaded = DesignPointStore(tmp_path).warm(second)
    assert loaded == len(first.exceedance) + len(first.no_fault) + len(first.system)
    assert second.disk_hits == 0

    # Preloaded entries must serve (and count) hits without recomputation.
    value = second.node_exceedance((1.2e-5, 1.3e-5), 1, 11)
    assert value == first.node_exceedance((1.2e-5, 1.3e-5), 1, 11)
    assert second.disk_hits == 1
    assert second.exceedance.stats.misses == 0


def test_round_trip_is_bit_identical_through_the_analysis_layer(tmp_path, context):
    """A warm engine must drive the full SFP/re-execution stack identically."""
    application, profile = context
    from repro.core.architecture import Architecture, Node
    from repro.core.mapping_model import ProcessMapping
    from repro.experiments.motivational import fig1_node_types

    n1, n2 = fig1_node_types()
    architecture = Architecture([Node("N1", n1, hardening=1), Node("N2", n2, hardening=1)])
    mapping = ProcessMapping({"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"})

    cold_engine = EvaluationEngine(application, profile)
    cold = ReExecutionOpt(engine=cold_engine).optimize(
        application, architecture, mapping, profile
    )
    store = DesignPointStore(tmp_path)
    store.persist(cold_engine)

    warm_engine = EvaluationEngine(application, profile)
    store.warm(warm_engine)
    warm = ReExecutionOpt(engine=warm_engine).optimize(
        application, architecture, mapping, profile
    )
    assert warm == cold
    assert warm_engine.disk_hits > 0


def test_persist_merges_with_existing_file(tmp_path, context):
    application, profile = context
    store = DesignPointStore(tmp_path)
    first = _engine_with_entries(context)
    store.persist(first)

    # A second engine computing a *different* entry must not clobber the
    # first engine's entries on disk.
    second = EvaluationEngine(application, profile)
    second.node_exceedance((9e-6,), 3, 11)
    store.persist(second)

    third = EvaluationEngine(application, profile)
    store.warm(third)
    assert ((1.2e-5, 1.3e-5), 1, 11) in third.exceedance
    assert ((9e-6,), 3, 11) in third.exceedance


def test_empty_engine_persists_nothing(tmp_path, context):
    application, profile = context
    store = DesignPointStore(tmp_path)
    assert store.persist(EvaluationEngine(application, profile)) == 0
    assert list(tmp_path.glob("*.pkl")) == []


# ----------------------------------------------------------------------
# salting / invalidation
# ----------------------------------------------------------------------
def test_salt_mismatch_makes_old_files_unreachable(tmp_path, context):
    application, profile = context
    old = DesignPointStore(tmp_path, salt="code-v1")
    old.persist(_engine_with_entries(context))

    new = DesignPointStore(tmp_path, salt="code-v2")
    engine = EvaluationEngine(application, profile)
    assert new.warm(engine) == 0  # hashed to a different file name
    assert len(engine.exceedance) == 0


def test_default_salt_folds_in_schema_and_version():
    salt = code_version_salt()
    assert "schema=" in salt and "version=" in salt


def test_corrupt_file_is_ignored_and_removed(tmp_path, context):
    application, profile = context
    store = DesignPointStore(tmp_path)
    store.persist(_engine_with_entries(context))
    path = store.path_for(EvaluationEngine(application, profile))
    path.write_bytes(b"not a pickle at all")

    engine = EvaluationEngine(application, profile)
    assert store.warm(engine) == 0
    assert not path.exists()
    assert store.stats.invalid_files == 1


def test_foreign_payload_is_rejected(tmp_path, context):
    application, profile = context
    store = DesignPointStore(tmp_path)
    path = store.path_for(EvaluationEngine(application, profile))
    path.write_bytes(pickle.dumps({"caches": "nope", "salt": "other"}))
    assert store.warm(EvaluationEngine(application, profile)) == 0
    assert not path.exists()


# ----------------------------------------------------------------------
# size cap / eviction
# ----------------------------------------------------------------------
def test_size_cap_evicts_least_recently_used(tmp_path, context):
    application, profile = context
    store = DesignPointStore(tmp_path, max_bytes=1)  # everything over cap
    store.persist(_engine_with_entries(context))
    # The just-written file is protected from its own eviction pass...
    assert store.path_for(EvaluationEngine(application, profile)).exists()

    # ...but an older unrelated file gets evicted.
    stale = tmp_path / ("f" * 64 + ".pkl")
    stale.write_bytes(b"x" * 4096)
    os.utime(stale, (1, 1))
    store.persist(_engine_with_entries(context))
    assert not stale.exists()
    assert store.stats.evicted_files >= 1


def test_rejects_nonpositive_cap(tmp_path):
    with pytest.raises(ValueError):
        DesignPointStore(tmp_path, max_bytes=0)


def test_warm_survives_concurrent_eviction_of_the_file(tmp_path, context, monkeypatch):
    """A racing process may unlink the file between our read and the LRU
    touch; warm() must shrug, not crash the sweep."""
    application, profile = context
    store = DesignPointStore(tmp_path)
    store.persist(_engine_with_entries(context))
    path = store.path_for(EvaluationEngine(application, profile))

    original_utime = os.utime

    def unlink_then_utime(target, *args, **kwargs):
        Path(target).unlink()  # simulate the concurrent eviction
        return original_utime(target, *args, **kwargs)

    monkeypatch.setattr(os, "utime", unlink_then_utime)
    engine = EvaluationEngine(application, profile)
    assert store.warm(engine) > 0  # entries still served from the read


def test_stale_tmp_orphans_are_swept_and_capped(tmp_path, context):
    """Interrupted writes must neither accumulate nor escape the size cap."""
    old_orphan = tmp_path / "deadbeef0000.tmp"
    old_orphan.write_bytes(b"x" * 1024)
    os.utime(old_orphan, (1, 1))  # ancient: swept at store construction
    store = DesignPointStore(tmp_path, max_bytes=1)
    assert not old_orphan.exists()

    fresh_orphan = tmp_path / "cafebabe0000.tmp"
    fresh_orphan.write_bytes(b"x" * 4096)
    os.utime(fresh_orphan, (os.path.getmtime(tmp_path) - 10,) * 2)
    store.persist(_engine_with_entries(context))  # cap pass runs after persist
    assert not fresh_orphan.exists()  # counted and evicted like any file


# ----------------------------------------------------------------------
# stable fingerprint
# ----------------------------------------------------------------------
def test_stable_fingerprint_is_deterministic_within_process(context):
    application, profile = context
    first = stable_context_fingerprint(application, profile)
    second = stable_context_fingerprint(fig1_application(), fig1_profile())
    assert first == second
    assert len(first) == 64 and int(first, 16) >= 0


def test_stable_fingerprint_survives_hash_randomization():
    """PYTHONHASHSEED must not leak into persisted keys (unlike builtin hash)."""
    script = (
        "from repro.experiments.motivational import fig1_application, fig1_profile\n"
        "from repro.engine import stable_context_fingerprint\n"
        "print(stable_context_fingerprint(fig1_application(), fig1_profile()))\n"
    )
    digests = set()
    for seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=str(SRC))
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        digests.add(output)
    assert len(digests) == 1


def test_different_contexts_hash_to_different_files(tmp_path, context):
    application, profile = context
    from repro.experiments.motivational import fig3_application, fig3_profile

    store = DesignPointStore(tmp_path)
    a = store.path_for(EvaluationEngine(application, profile))
    b = store.path_for(EvaluationEngine(fig3_application(), fig3_profile()))
    assert a != b


# ----------------------------------------------------------------------
# single-flight guard (one computer per context across concurrent jobs)
# ----------------------------------------------------------------------
def _lock_path(store: DesignPointStore, engine: EvaluationEngine) -> Path:
    return store.directory / f"{store.context_key(engine)}.lock"


def test_single_flight_leader_holds_and_releases_the_lock(tmp_path, context):
    application, profile = context
    store = DesignPointStore(tmp_path)
    engine = EvaluationEngine(application, profile)
    with store.single_flight(engine) as leader:
        assert leader is True
        assert _lock_path(store, engine).exists()
    assert not _lock_path(store, engine).exists()
    assert store.stats.single_flight_leads == 1
    assert store.stats.single_flight_waits == 0


def test_single_flight_releases_the_lock_when_the_body_raises(tmp_path, context):
    application, profile = context
    store = DesignPointStore(tmp_path)
    engine = EvaluationEngine(application, profile)
    with pytest.raises(RuntimeError):
        with store.single_flight(engine):
            raise RuntimeError("leader died mid-flight")
    assert not _lock_path(store, engine).exists()


def test_single_flight_follower_waits_until_the_leader_releases(tmp_path, context):
    import threading
    import time as time_module

    application, profile = context
    store = DesignPointStore(tmp_path)
    engine = EvaluationEngine(application, profile)
    lock = _lock_path(store, engine)
    lock.write_text("12345")  # a live foreign leader

    def release():
        time_module.sleep(0.3)
        lock.unlink()

    thread = threading.Thread(target=release)
    thread.start()
    start = time_module.monotonic()
    with store.single_flight(engine) as leader:
        waited = time_module.monotonic() - start
        assert leader is False
    thread.join()
    assert waited >= 0.25
    assert store.stats.single_flight_waits == 1
    # A follower never deletes the leader's lock on exit.
    assert not lock.exists()


def test_single_flight_breaks_stale_locks(tmp_path, context):
    application, profile = context
    store = DesignPointStore(tmp_path)
    engine = EvaluationEngine(application, profile)
    lock = _lock_path(store, engine)
    lock.write_text("12345")
    ancient = os.path.getmtime(lock) - 10_000.0
    os.utime(lock, (ancient, ancient))
    with store.single_flight(engine, stale_after=600.0) as leader:
        # The orphaned lock of a dead leader is broken and the caller
        # proceeds (as a follower — at worst it recomputes).
        assert leader is False
    assert not lock.exists()


def test_single_flight_timeout_bounds_the_wait(tmp_path, context):
    import time as time_module

    application, profile = context
    store = DesignPointStore(tmp_path)
    engine = EvaluationEngine(application, profile)
    lock = _lock_path(store, engine)
    lock.write_text("12345")  # never released
    start = time_module.monotonic()
    with store.single_flight(engine, timeout=0.2) as leader:
        assert leader is False
    assert time_module.monotonic() - start < 5.0
    assert lock.exists()  # fresh foreign lock is left alone
    lock.unlink()


def test_single_flight_follower_serves_the_leaders_points_from_disk(tmp_path, context):
    """The serve-layer contract: follower warms after the leader's persist."""
    application, profile = context
    store = DesignPointStore(tmp_path)
    leader_engine = _engine_with_entries(context)
    with store.single_flight(leader_engine) as leader:
        assert leader is True
        store.persist(leader_engine)

    follower_engine = EvaluationEngine(application, profile)
    follower_store = DesignPointStore(tmp_path)
    with follower_store.single_flight(follower_engine):
        loaded = follower_store.warm(follower_engine)
    assert loaded > 0
    value = follower_engine.node_exceedance((1.2e-5, 1.3e-5), 1, 11)
    assert value == leader_engine.node_exceedance((1.2e-5, 1.3e-5), 1, 11)
    assert follower_engine.exceedance.stats.misses == 0


# ----------------------------------------------------------------------
# directory stats and lock-file hygiene
# ----------------------------------------------------------------------
def test_directory_stats_counts_persisted_files_only(tmp_path, context):
    store = DesignPointStore(tmp_path)
    assert store.directory_stats() == {
        "files": 0,
        "bytes": 0,
        "max_bytes": store.max_bytes,
    }
    engine = _engine_with_entries(context)
    store.persist(engine)
    (tmp_path / "in-flight.tmp").write_bytes(b"x" * 64)
    (tmp_path / "abc.lock").write_text("123")
    stats = store.directory_stats()
    assert stats["files"] == 1
    assert stats["bytes"] == store.path_for(engine).stat().st_size
    assert stats["max_bytes"] == store.max_bytes


def test_eviction_never_touches_lock_files(tmp_path, context):
    store = DesignPointStore(tmp_path, max_bytes=1)  # evict everything
    lock = tmp_path / "deadbeef.lock"
    lock.write_text("123")
    engine = _engine_with_entries(context)
    store.persist(engine)
    # The freshly written file is exempt; a second persist of a different
    # cap-busting store must still leave the lock alone.
    assert lock.exists()
