"""Unit tests for the argument validation helpers."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    require_in_unit_interval,
    require_non_negative,
    require_positive,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(3.5, "x") == 3.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="deadline"):
            require_positive(-1.0, "deadline")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0.0, "mu") == 0.0

    def test_accepts_positive(self):
        assert require_non_negative(2.0, "mu") == 2.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="mu must be >= 0"):
            require_non_negative(-0.1, "mu")


class TestRequireInUnitInterval:
    def test_accepts_bounds(self):
        assert require_in_unit_interval(0.0, "p") == 0.0
        assert require_in_unit_interval(1.0, "p") == 1.0

    def test_accepts_interior(self):
        assert require_in_unit_interval(0.25, "p") == 0.25

    def test_rejects_above_one(self):
        with pytest.raises(ValueError, match="within \\[0, 1\\]"):
            require_in_unit_interval(1.0001, "p")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_in_unit_interval(-0.2, "p")
